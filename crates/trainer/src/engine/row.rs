//! The ROG engine: row-granulated RSP + ATP over the simulated channel.
//!
//! Per iteration each worker accumulates real gradients into its
//! [`RogWorker`], ranks rows (importance + mandatory stale rows first),
//! and *speculatively transmits* them: a flow of per-row chunks with a
//! deadline equal to the shared MTA-time budget. If the deadline cuts
//! the flow before MTA (or before the RSP-mandatory rows) got through,
//! the worker continues transmitting exactly up to that target — it is a
//! straggler this round, and its measured time updates the shared budget.
//! Fast workers instead fit *all* their rows inside the budget. The
//! server applies the RSP gate before granting pulls, which are
//! speculatively transmitted the same way.
//!
//! The parameter plane is row-sharded ([`ShardedServer`]): each shard
//! owns a contiguous row range with its own version store, MTA budget
//! and RSP gate, and every worker↔shard pair has its own link. A push
//! cycle splits the globally ranked plan into per-shard legs that
//! transmit, gate and pull independently; the cycle completes when every
//! engaged leg has. With one shard everything collapses to the original
//! single-server engine, bit for bit.

use std::collections::BTreeMap;

use rog_compress::{CodecChoice, RowCodec};
use rog_core::{
    mta, AggregatorMap, AggregatorPlane, MtaTimeTracker, RogWorker, RogWorkerConfig, RowId,
    ShardMap, ShardedServer,
};
use rog_fault::FaultEvent;
use rog_net::{
    shard_link, BackoffPolicy, FlowEvent, FlowId, FlowOutcome, FlowSpec, ReliableProgress,
    ReliableTransfer,
};
use rog_obs::{obs, obs_shard, Event, EventKind};
use rog_sim::{DeviceState, Time};
use rog_sync::gate;

use crate::compute::{self, PendingDraw};
use crate::config::{ExperimentConfig, Strategy};
use crate::engine::common::{EngineCtx, Ev};
use crate::metrics::{MicroSample, RunMetrics};
use crate::run::FleetStats;

/// One shard's leg of a worker's push/pull cycle.
#[derive(Default)]
struct SubState {
    /// Rows of this cycle homed on this shard, in global rank order
    /// (the RSP-mandatory rows form a prefix).
    push_plan: Vec<RowId>,
    push_started: Time,
    /// When the worker joined this shard's RSP gate wait (journal only).
    gate_entered: Time,
    push_delivered: usize,
    push_target: usize,
    mta_rows: usize,
    /// Length of the RSP-mandatory prefix of `push_plan`. Mandatory rows
    /// are the gate's contract — a worker at the staleness bound blocks
    /// every peer's pull — so unlike the best-effort bulk they are
    /// retransmitted within the cycle until they land.
    push_mandatory: usize,
    /// Rows of the current push leg that actually arrived intact
    /// (loss model installed only; gradient rows are best-effort, so a
    /// lost row is simply not committed and ages toward the RSP bound).
    push_intact: Vec<RowId>,
    /// Mandatory rows lost in flight, currently being retransmitted.
    push_retry: Vec<RowId>,
    pull_plan: Vec<RowId>,
    pull_delivered: usize,
    pull_target: usize,
    /// Rows of the current pull leg that arrived intact (ditto).
    pull_intact: Vec<RowId>,
    /// This shard participates in the current cycle.
    engaged: bool,
    /// The push (commit + gate entry) finished for this cycle.
    push_done: bool,
    /// Push and pull both finished for this cycle.
    done: bool,
    /// Action to take on this leg once connectivity returns after a
    /// fault cancelled its in-flight transfer.
    resume: Option<SubResume>,
}

struct WState {
    model: rog_models::Mlp,
    worker: RogWorker,
    /// Completed iterations (currently working on `iter + 1`).
    iter: u64,
    done: bool,
    /// Currently running a gradient computation.
    computing: bool,
    /// A push/pull cycle is in flight (pipeline mode).
    comm_busy: bool,
    /// Iteration the in-flight comm cycle is pushing.
    comm_iter: u64,
    /// Last iteration whose pull has been applied (pipeline mode).
    applied_iter: u64,
    /// Compute is paused waiting for the comm pipeline to catch up.
    pipe_waiting: bool,
    /// Whole-cycle action to take once connectivity returns (the cycle
    /// was parked before any leg started, or a resync must restart).
    resume: Option<Resume>,
    /// Per-shard legs of the current cycle.
    subs: Vec<SubState>,
    /// Reusable buffer for the globally ranked push plan.
    plan_scratch: Vec<RowId>,
    /// Rows delivered across all legs this cycle (micro-events).
    cycle_push_delivered: usize,
    /// Rows planned across all legs this cycle (micro-events).
    cycle_push_total: usize,
}

/// What an interrupted worker does when connectivity returns. Cancelled
/// transfers acknowledge nothing (retransmit-from-scratch semantics), so
/// each variant restarts its phase rather than splicing a partial one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resume {
    /// Restart the push of the suspended comm cycle (parked before any
    /// leg could start).
    Push,
    /// Restart the rejoin resync transfer.
    Resync,
}

/// What one suspended shard leg restarts as (see [`Resume`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubResume {
    /// Restart this leg's push.
    Push,
    /// Re-enter this shard's RSP gate wait; the pull plan is recomputed
    /// at grant time, so nothing is lost.
    PullGate,
}

#[derive(Debug, Clone, Copy)]
enum FlowCtx {
    Push {
        w: usize,
        s: usize,
        cont: bool,
    },
    /// In-cycle retransmit of mandatory push rows the loss model ate.
    PushRetry {
        w: usize,
        s: usize,
    },
    Pull {
        w: usize,
        s: usize,
        cont: bool,
    },
    /// Full-model transfer bringing a rejoining worker back in sync.
    Resync {
        w: usize,
    },
}

impl FlowCtx {
    fn worker(self) -> usize {
        match self {
            FlowCtx::Push { w, .. }
            | FlowCtx::PushRetry { w, .. }
            | FlowCtx::Pull { w, .. }
            | FlowCtx::Resync { w } => w,
        }
    }

    /// The shard this flow talks to (`None` for whole-server resyncs).
    fn shard(self) -> Option<usize> {
        match self {
            FlowCtx::Push { s, .. } | FlowCtx::PushRetry { s, .. } | FlowCtx::Pull { s, .. } => {
                Some(s)
            }
            FlowCtx::Resync { .. } => None,
        }
    }
}

/// Segment size for reliable-class transfers under a loss model: a lost
/// chunk costs one segment's retransmit, not the whole payload.
const RELIABLE_SEGMENT_BYTES: u64 = 64 * 1024;

/// Splits a payload into `RELIABLE_SEGMENT_BYTES` chunks (last one
/// short). Chunk boundaries never change a no-deadline flow's fluid
/// completion time, only loss granularity.
pub(crate) fn segment_chunks(total: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut left = total;
    while left > RELIABLE_SEGMENT_BYTES {
        out.push(RELIABLE_SEGMENT_BYTES);
        left -= RELIABLE_SEGMENT_BYTES;
    }
    out.push(left);
    out
}

struct RowEngine {
    ctx: EngineCtx,
    workers: Vec<WState>,
    /// Prefetched gradient draws, one slot per worker.
    pending: Vec<Option<PendingDraw>>,
    server: ShardedServer,
    /// One MTA-time budget per shard.
    trackers: Vec<MtaTimeTracker>,
    flows: BTreeMap<FlowId, FlowCtx>,
    /// Legs whose pull awaits a shard's RSP gate: (worker, shard, iter).
    waiting: Vec<(usize, usize, u64)>,
    /// Last pushed iteration per worker (micro-event staleness).
    last_pushed: Vec<u64>,
    /// Outstanding `ComputeDone` timers of departed workers, swallowed
    /// on arrival (one count per timer in flight at departure).
    stale_timers: Vec<u32>,
    /// Compressed whole-model wire size, for rejoin resync transfers.
    model_wire_bytes: u64,
    /// Reliable-class resync retransmit state, one slot per worker
    /// (populated only while a loss model is installed).
    retx: Vec<Option<ReliableTransfer>>,
    /// Whether a `NetRetry` backoff timer is queued for a worker.
    retry_armed: Vec<bool>,
    /// Queued `NetRetry` timers voided by a fault, swallowed on arrival.
    stale_retries: Vec<u32>,
    /// Invariant watchdog: the last observed per-shard min(V), which may
    /// never regress.
    #[cfg(debug_assertions)]
    last_global_min: Vec<u64>,
    /// A shard outage made a cycle skip that shard, so its rows may
    /// legitimately age past the static staleness bound.
    #[cfg(debug_assertions)]
    skipped_shard_push: bool,
    /// Edge-aggregation tier (`None` = flat worker→server topology,
    /// byte-identical to the pre-aggregator engine).
    agg_plane: Option<AggregatorPlane>,
    /// Per-aggregator outage flags; a downed aggregator severs all its
    /// member workers from the parameter plane at once.
    agg_down: Vec<bool>,
    /// In-flight transfer count per worker (replaces the former
    /// O(flows) scan in `set_comm_state_sub`).
    flows_per_worker: Vec<u32>,
    /// Events dispatched by the loop (flow completions, faults,
    /// timers): the deterministic progress measure `bench_fleet`
    /// reports, identical across hosts and thread counts.
    sim_events: u64,
    /// High-water mark of the sharded version stores' resident bytes.
    peak_version_bytes: usize,
    n_shards: usize,
    threshold: u32,
    /// Overlap communication and computation (paper future work).
    pipeline: bool,
    /// Online threshold controller (paper future work).
    auto: Option<AutoThreshold>,
    /// Channel-driven bound controller (the `roga` adaptive hybrid).
    adaptive: Option<AdaptiveBound>,
    /// Per-link codec selector (`--codec auto`).
    codec_auto: Option<CodecAuto>,
}

/// Online staleness-threshold controller: widens the threshold when the
/// cluster is stalling (buy throughput), narrows it when the channel is
/// calm (buy statistical efficiency) — the paper's Sec. VI-C future
/// work, as a simple hysteresis controller over the recent stall share.
#[derive(Debug, Clone, Copy)]
struct AutoThreshold {
    min: u32,
    max: u32,
    /// Controller period in completed iterations (cluster-wide).
    window_iters: u64,
    stall_hi: f64,
    stall_lo: f64,
    /// Iterations completed at the last check.
    last_iters: u64,
    /// Virtual time of the last check.
    last_time: Time,
}

impl AutoThreshold {
    fn new(initial: u32) -> Self {
        Self {
            // Never narrow below the configured threshold: narrowing is
            // only meaningful relative to what the controller itself
            // widened (below that, low stall is *caused* by the tight
            // gate, and the controller would oscillate — especially in
            // pipeline mode where the threshold also bounds the
            // pipeline depth).
            min: initial,
            max: 40,
            window_iters: 60,
            stall_hi: 0.18,
            stall_lo: 0.04,
            last_iters: 0,
            last_time: 0.0,
        }
    }
}

/// Adaptive-bound RSP controller (the `roga` hybrid): drives the row
/// gate's staleness bound from the per-link loss-rate and goodput EWMAs
/// the channel already maintains. A calm, uniform channel narrows the
/// bound toward `min` (statistical efficiency); packet loss or a faded
/// straggler link widens it toward `max` so healthy devices keep
/// computing through the turbulence. Unlike [`AutoThreshold`] — which
/// reacts to the *symptom*, the observed stall share — this controller
/// reacts to the *cause* and can move before stalls accumulate.
#[derive(Debug, Clone, Copy)]
struct AdaptiveBound {
    min: u32,
    max: u32,
    /// Controller period in completed iterations (cluster-wide).
    window_iters: u64,
    /// Iterations completed at the last check.
    last_iters: u64,
}

impl AdaptiveBound {
    fn new(min: u32, max: u32) -> Self {
        assert!(min >= 1, "adaptive bound min threshold must be at least 1");
        assert!(
            min <= max,
            "adaptive bound min threshold must not exceed max"
        );
        Self {
            min,
            max,
            window_iters: 24,
            last_iters: 0,
        }
    }
}

/// Per-link codec selector (`--codec auto`): every window it re-picks
/// each worker's row codec from the channel's per-link loss-rate and
/// goodput EWMAs. A calm, uniform link keeps the dense one-bit codec
/// (full sign information, best statistical efficiency); a lossy or
/// faded straggler link drops to sparse-delta so the fewest bytes
/// possible squeeze through the bad link. The decision is a pure
/// function of the EWMAs at a deterministic evaluation point (the same
/// cluster-iteration windowing as [`AdaptiveBound`]), so runs stay
/// byte-identical across thread counts; every change is journaled as a
/// `codec_select` event and replay-checked by the fuzzer.
#[derive(Debug, Clone, Copy)]
struct CodecAuto {
    /// Controller period in completed iterations (cluster-wide).
    window_iters: u64,
    /// Iterations completed at the last check.
    last_iters: u64,
    /// Stress level above which a link falls back from dense one-bit to
    /// sparse-delta.
    stress_hi: f64,
    /// Stress level below which a sparse link recovers to one-bit
    /// (hysteresis gap keeps the selector from flapping).
    stress_lo: f64,
}

impl CodecAuto {
    fn new() -> Self {
        Self {
            window_iters: 24,
            last_iters: 0,
            stress_hi: 0.35,
            stress_lo: 0.15,
        }
    }
}

/// Runs one ROG experiment.
pub fn run(cfg: &ExperimentConfig) -> RunMetrics {
    run_traced(cfg).0
}

/// Runs one ROG experiment, returning the event journal alongside the
/// metrics.
pub fn run_traced(cfg: &ExperimentConfig) -> (RunMetrics, rog_obs::Journal) {
    let (metrics, journal, _) = run_full(cfg);
    (metrics, journal)
}

/// Runs one ROG experiment, returning metrics, journal and the
/// fleet-scale statistics ([`FleetStats`]).
pub fn run_full(cfg: &ExperimentConfig) -> (RunMetrics, rog_obs::Journal, FleetStats) {
    let (threshold, adaptive) = match cfg.strategy {
        Strategy::Rog { threshold } => (threshold, None),
        Strategy::RogAdaptive {
            min_threshold,
            max_threshold,
        } => (
            min_threshold,
            Some(AdaptiveBound::new(min_threshold, max_threshold)),
        ),
        _ => unreachable!("model strategies run in the model engine"),
    };
    let ctx = EngineCtx::new(cfg);
    let n = cfg.n_workers;
    let n_shards = cfg.effective_shards();
    let init = ctx.cluster.init_model.clone();
    let lr = ctx.cluster.lr;
    let mut wcfg = RogWorkerConfig::new(threshold, lr);
    if cfg.momentum > 0.0 {
        wcfg = wcfg.with_momentum(cfg.momentum);
    }
    if let Some((f1, f2)) = cfg.importance_weights {
        wcfg.importance = rog_core::ImportanceMetric::new(rog_core::ImportanceWeights { f1, f2 });
    }
    // Codec seeding: worker- and server-side stochastic codecs draw from
    // disjoint streams forked off a dedicated root, so a codec change
    // never perturbs any other consumer of the experiment seed (forking
    // is pure), and the one-bit default — which never draws — stays
    // byte-identical to the pre-codec engine regardless of the seeds.
    let codec_choice = cfg.effective_codec();
    let codec_root = rog_tensor::rng::DetRng::new(cfg.seed).fork(0xC0DEC);
    let worker_codec_base = codec_root.fork(1);
    let workers: Vec<WState> = (0..n)
        .map(|w| WState {
            model: init.clone(),
            worker: RogWorker::new(
                init.params(),
                wcfg.with_codec(codec_choice, worker_codec_base.fork(w as u64).seed()),
            ),
            iter: 0,
            done: false,
            computing: false,
            comm_busy: false,
            comm_iter: 0,
            applied_iter: 0,
            pipe_waiting: false,
            resume: None,
            subs: (0..n_shards).map(|_| SubState::default()).collect(),
            plan_scratch: Vec::new(),
            cycle_push_delivered: 0,
            cycle_push_total: 0,
        })
        .collect();
    let map = ShardMap::contiguous(init.row_widths().len(), n_shards);
    let mut server = ShardedServer::new(init.params(), n, threshold, wcfg.importance, map);
    server.configure_codec(codec_choice, codec_root.fork(0).seed());
    let n_aggs = cfg.effective_aggregators();
    let agg_plane = (n_aggs > 0).then(|| {
        AggregatorPlane::new(
            AggregatorMap::contiguous(n, n_aggs),
            n_shards,
            init.row_widths().len(),
        )
    });
    let widths = init.row_widths();
    // Rejoin resyncs always ship the dense one-bit model: a rejoiner's
    // residuals were just reset, so there is no content to size against.
    let model_wire_bytes = ctx.cluster.scaled_model_bytes(
        widths
            .iter()
            .map(|&w| rog_compress::OneBitCodec.payload_bytes(w)),
    );
    let mut engine = RowEngine {
        ctx,
        workers,
        pending: (0..n).map(|_| None).collect(),
        server,
        trackers: (0..n_shards).map(|_| MtaTimeTracker::new(n, 1.0)).collect(),
        flows: BTreeMap::new(),
        waiting: Vec::new(),
        last_pushed: vec![0; n],
        stale_timers: vec![0; n],
        model_wire_bytes,
        retx: (0..n).map(|_| None).collect(),
        retry_armed: vec![false; n],
        stale_retries: vec![0; n],
        #[cfg(debug_assertions)]
        last_global_min: vec![0; n_shards],
        #[cfg(debug_assertions)]
        skipped_shard_push: false,
        agg_plane,
        agg_down: vec![false; n_aggs],
        flows_per_worker: vec![0; n],
        sim_events: 0,
        peak_version_bytes: 0,
        n_shards,
        threshold,
        pipeline: cfg.pipeline,
        auto: cfg.auto_threshold.then(|| AutoThreshold::new(threshold)),
        adaptive,
        codec_auto: codec_choice.is_auto().then(CodecAuto::new),
    };
    engine.event_loop();
    let agg = engine
        .agg_plane
        .as_ref()
        .map(|p| p.stats())
        .unwrap_or_default();
    let stats = FleetStats {
        sim_events: engine.sim_events,
        queue_scheduled: engine.ctx.queue.scheduled(),
        peak_version_bytes: engine.peak_version_bytes as u64,
        agg_flushes: agg.flushes,
        agg_upstream_rows: agg.upstream_rows,
        agg_raw_rows: agg.raw_rows,
        agg_pulls: agg.pulls,
    };
    let models: Vec<&rog_models::Mlp> = engine.workers.iter().map(|w| &w.model).collect();
    let (metrics, journal) = engine.ctx.finish_traced(&models);
    (metrics, journal, stats)
}

impl RowEngine {
    /// The journal scope of shard `s`: real shard id only when the run
    /// is actually sharded, so single-shard journals stay byte-identical
    /// to the pre-shard engine's.
    fn shard_tag(&self, s: usize) -> i64 {
        if self.n_shards > 1 {
            s as i64
        } else {
            Event::NO_SHARD
        }
    }

    /// Whether at least one parameter shard is reachable.
    fn any_shard_up(&self) -> bool {
        self.ctx.server_down.iter().any(|&d| !d)
    }

    /// Whether `w`'s fronting aggregator (if any) is down.
    fn agg_blocked(&self, w: usize) -> bool {
        self.agg_plane
            .as_ref()
            .is_some_and(|p| self.agg_down[p.map().agg_of(w)])
    }

    /// Whether `w`'s path to the parameter plane is severed: its own
    /// link is blacked out, or (hierarchical topology) its fronting
    /// aggregator is down. Every connectivity decision the engine makes
    /// for a worker goes through this, so an aggregator outage behaves
    /// exactly like a blackout of all its members at once.
    fn path_blocked(&self, w: usize) -> bool {
        self.ctx.link_down[w] || self.agg_blocked(w)
    }

    /// Registers an in-flight transfer (single insertion point, keeping
    /// `flows_per_worker` exact).
    fn track_flow(&mut self, id: FlowId, ctx: FlowCtx) {
        self.flows_per_worker[ctx.worker()] += 1;
        self.flows.insert(id, ctx);
    }

    /// Deregisters an in-flight transfer (completion or cancellation).
    fn untrack_flow(&mut self, id: FlowId) -> Option<FlowCtx> {
        let ctx = self.flows.remove(&id);
        if let Some(c) = ctx {
            self.flows_per_worker[c.worker()] -= 1;
        }
        ctx
    }

    fn start_compute(&mut self, w: usize, now: Time) {
        self.workers[w].computing = true;
        self.workers[w].pipe_waiting = false;
        obs!(
            self.ctx.journal,
            now,
            EventKind::IterBegin {
                w: w as u32,
                iter: self.workers[w].iter + 1,
            }
        );
        self.ctx.start_compute(w, now);
    }

    /// Sets the worker's state, preferring `Compute` while a gradient
    /// computation runs concurrently (pipeline mode).
    fn set_comm_state(&mut self, w: usize, now: Time, fallback: DeviceState) {
        let state = if self.workers[w].computing {
            DeviceState::Compute
        } else {
            fallback
        };
        self.ctx.set_state(w, now, state);
    }

    /// Like [`Self::set_comm_state`], but a worker with transfers still
    /// in flight to other shards stays `Communicate`: one stalled or
    /// finished leg must not misattribute the whole device's time.
    fn set_comm_state_sub(&mut self, w: usize, now: Time, fallback: DeviceState) {
        let state = if self.workers[w].computing {
            DeviceState::Compute
        } else if self.flows_per_worker[w] > 0 {
            DeviceState::Communicate
        } else {
            fallback
        };
        self.ctx.set_state(w, now, state);
    }

    fn event_loop(&mut self) {
        let duration = self.ctx.duration();
        for w in 0..self.workers.len() {
            self.start_compute(w, 0.0);
        }
        loop {
            let horizon = self
                .ctx
                .queue
                .peek_time()
                .unwrap_or(f64::INFINITY)
                .min(self.ctx.next_fault_time().unwrap_or(f64::INFINITY))
                .min(duration);
            let evs = self.ctx.cluster.transport.advance_until(horizon);
            let now = self.ctx.cluster.transport.now();
            if !evs.is_empty() {
                self.sim_events += evs.len() as u64;
                for e in evs {
                    self.on_flow(e);
                }
                continue;
            }
            if now >= duration - 1e-9 {
                break;
            }
            // Injected faults fire before timers at the same instant
            // (flow completions were already delivered above).
            let faults = self.ctx.pop_due_faults(now);
            if !faults.is_empty() {
                self.sim_events += faults.len() as u64;
                for f in faults {
                    self.on_fault(f, now);
                }
                continue;
            }
            // Draws for all pending ComputeDone timers are independent;
            // batch them on the compute plane before delivering events.
            compute::prefetch_draws(&mut self.ctx, &mut self.pending, |w| &self.workers[w].model);
            if self.ctx.queue.peek_time().is_some() {
                self.sim_events += 1;
            }
            match self.ctx.queue.pop() {
                Some((t, Ev::ComputeDone(w))) => self.on_compute_done(w, t),
                Some((t, Ev::NetRetry(w))) => self.on_net_retry(w, t),
                None => {
                    if self.ctx.cluster.transport.active_flows() == 0
                        && self.ctx.next_fault_time().is_none()
                    {
                        break;
                    }
                }
            }
        }
    }

    /// Consumes the prefetched draw for `w` (recomputing if it was
    /// invalidated by a pipeline pull since the prefetch).
    fn take_draw(&mut self, w: usize) -> (rog_models::GradSet, f32) {
        compute::take_draw(
            &mut self.ctx,
            &mut self.pending[w],
            w,
            &self.workers[w].model,
        )
    }

    fn scaled_chunks(&self, ws: &WState, rows: &[RowId]) -> Vec<u64> {
        rows.iter()
            .map(|&id| {
                self.ctx
                    .cluster
                    .scaled_row_bytes(ws.worker.payload_bytes(id))
            })
            .collect()
    }

    fn on_compute_done(&mut self, w: usize, now: Time) {
        if self.stale_timers[w] > 0 {
            // The worker that armed this timer departed; void the draw.
            self.stale_timers[w] -= 1;
            self.discard_pending(w);
            return;
        }
        self.workers[w].computing = false;
        if self.pipeline {
            self.on_compute_done_pipelined(w, now);
            return;
        }
        let n = self.workers[w].iter + 1;
        let (grads, _) = self.take_draw(w);
        self.workers[w].worker.accumulate(&grads);
        self.ctx.recycle_grads(grads);
        self.begin_push(w, now, n);
    }

    /// Pipeline mode: an iteration completes at each compute; gradients
    /// stream into the (concurrent) comm cycle, bounded so computation
    /// never runs more than the threshold ahead of applied pulls.
    fn on_compute_done_pipelined(&mut self, w: usize, now: Time) {
        let n = self.workers[w].iter + 1;
        self.workers[w].iter = n;
        self.ctx.collector.record_iteration(w);
        obs!(
            self.ctx.journal,
            now,
            EventKind::IterEnd {
                w: w as u32,
                iter: n
            }
        );
        let (grads, _) = self.take_draw(w);
        self.workers[w].worker.accumulate(&grads);
        self.ctx.recycle_grads(grads);
        self.ctx.maybe_eval(w, n, now, &self.workers[w].model);
        if !self.workers[w].comm_busy {
            self.begin_push(w, now, n);
        }
        self.maybe_continue_compute(w, now);
        self.maybe_adjust_threshold(now);
        self.maybe_adapt_bound(now);
        self.maybe_select_codecs(now);
    }

    fn maybe_continue_compute(&mut self, w: usize, now: Time) {
        if now >= self.ctx.duration() {
            self.workers[w].done = true;
            if !self.workers[w].comm_busy {
                self.ctx.set_state(w, now, DeviceState::Idle);
            }
            return;
        }
        let ws = &self.workers[w];
        let ahead = ws.iter.saturating_sub(ws.applied_iter);
        // Pipeline depth is bounded at 2 (Pipe-SGD style), independent
        // of the staleness threshold: row staleness accrues per
        // *computed* iteration but push opportunities only arise per
        // comm cycle, so letting compute run `threshold` iterations
        // ahead would mass-expire rows and thrash the RSP gate.
        let depth = u64::from(self.threshold.max(1)).min(2);
        if ahead < depth {
            self.start_compute(w, now);
        } else {
            self.workers[w].pipe_waiting = true;
            self.ctx.set_state(w, now, DeviceState::Stall);
        }
    }

    fn begin_push(&mut self, w: usize, now: Time, n: u64) {
        if self.path_blocked(w) || !self.any_shard_up() {
            // Nothing to transmit through: park the whole cycle; a
            // recovery event restarts it via `resume_worker`.
            let ws = &mut self.workers[w];
            ws.comm_busy = true;
            ws.comm_iter = n;
            ws.resume = Some(Resume::Push);
            self.set_comm_state(w, now, DeviceState::Stall);
            return;
        }
        let ws = &mut self.workers[w];
        ws.comm_busy = true;
        ws.comm_iter = n;
        ws.cycle_push_delivered = 0;
        ws.cycle_push_total = 0;
        let mut plan = std::mem::take(&mut ws.plan_scratch);
        ws.worker.plan_push_into(n, &mut plan);
        for sub in &mut ws.subs {
            sub.push_plan.clear();
            sub.engaged = false;
            sub.push_done = false;
            sub.done = false;
            sub.resume = None;
        }
        // Split the globally ranked plan across shards; per-shard order
        // follows the ranking, so each shard's RSP-mandatory rows stay a
        // prefix of its leg's plan.
        let map = self.server.map();
        for &id in &plan {
            ws.subs[map.shard_of(id)].push_plan.push(id);
        }
        ws.plan_scratch = plan;
        for s in 0..self.n_shards {
            if self.ctx.server_down[s] {
                // This shard's rows stay accumulated and age toward the
                // RSP bound; they re-rank into a later cycle's push.
                #[cfg(debug_assertions)]
                {
                    self.skipped_shard_push = true;
                }
                continue;
            }
            self.start_push_sub(w, s, now, n);
        }
    }

    /// Starts one shard leg's speculative push (its plan is already in
    /// `subs[s].push_plan`).
    fn start_push_sub(&mut self, w: usize, s: usize, now: Time, n: u64) {
        let threshold = self.threshold;
        let ws = &mut self.workers[w];
        let n_rows = ws.subs[s].push_plan.len();
        let mandatory = {
            let row_iters = ws.worker.row_iters();
            ws.subs[s]
                .push_plan
                .iter()
                .take_while(|&&id| gate::row_is_mandatory(row_iters[id.0], n, threshold))
                .count()
        };
        let mta_rows = mta::mta_rows(n_rows, threshold);
        let sub = &mut ws.subs[s];
        sub.engaged = true;
        sub.done = false;
        sub.push_done = false;
        sub.resume = None;
        sub.mta_rows = mta_rows;
        sub.push_target = mta_rows.max(mandatory).min(n_rows);
        sub.push_mandatory = mandatory.min(n_rows);
        sub.push_started = now;
        sub.push_delivered = 0;
        sub.push_intact.clear();
        sub.push_retry.clear();
        let budget = self.trackers[s].get();
        if self.ctx.journal.enabled() {
            let sub = &self.workers[w].subs[s];
            let start = EventKind::PushStart {
                w: w as u32,
                iter: n,
                rows: sub.push_plan.len() as u32,
                mand: sub.push_mandatory as u32,
                mta: sub.mta_rows as u32,
                budget,
            };
            let rows_ranked = EventKind::RowPush {
                w: w as u32,
                iter: n,
                rows: sub.push_plan.iter().map(|id| id.0 as u32).collect(),
            };
            let tag = self.shard_tag(s);
            self.ctx.journal.record_shard(now, tag, start);
            self.ctx.journal.record_shard(now, tag, rows_ranked);
        }
        let chunks = {
            let ws = &self.workers[w];
            self.scaled_chunks(ws, &ws.subs[s].push_plan)
        };
        self.set_comm_state(w, now, DeviceState::Communicate);
        let link = shard_link(w, self.n_shards, s);
        let id = self
            .ctx
            .cluster
            .transport
            .start_flow(now, FlowSpec::new(link, chunks).with_deadline(now + budget));
        self.track_flow(id, FlowCtx::Push { w, s, cont: false });
    }

    fn on_flow(&mut self, ev: FlowEvent) {
        let ctx = self.untrack_flow(ev.id).expect("unknown flow");
        match ctx {
            FlowCtx::Push { w, s, cont } => self.on_push_flow(w, s, cont, ev),
            FlowCtx::PushRetry { w, s } => self.on_push_retry_flow(w, s, ev),
            FlowCtx::Pull { w, s, cont } => self.on_pull_flow(w, s, cont, ev),
            FlowCtx::Resync { w } => {
                debug_assert!(
                    matches!(ev.outcome, FlowOutcome::Completed),
                    "resync flows have no deadline"
                );
                self.on_resync_flow(w, ev);
            }
        }
    }

    /// Collects the rows of a finished push/pull flow round that arrived
    /// intact. Without a loss model there is no report and every
    /// transmitted row counts (the pre-loss fast path stays untouched).
    fn collect_intact(
        &mut self,
        ev: &FlowEvent,
        base: usize,
        delivered_now: usize,
        pull: bool,
        w: usize,
        s: usize,
    ) {
        let Some(report) = self.ctx.cluster.transport.take_report(ev.id) else {
            return;
        };
        let lost = report.lost_chunks();
        let corrupt = report.corrupt_chunks();
        if lost + corrupt > 0 {
            obs_shard!(
                self.ctx.journal,
                ev.at,
                self.shard_tag(s),
                EventKind::Loss {
                    w: w as u32,
                    lost: lost as u32,
                    corrupt: corrupt as u32,
                    chunks: report.fates.len() as u32,
                }
            );
        }
        let sub = &mut self.workers[w].subs[s];
        let (plan, intact) = if pull {
            (&sub.pull_plan, &mut sub.pull_intact)
        } else {
            (&sub.push_plan, &mut sub.push_intact)
        };
        intact.extend(
            (0..delivered_now)
                .filter(|&i| report.intact(i))
                .map(|i| plan[base + i]),
        );
    }

    fn on_push_flow(&mut self, w: usize, s: usize, cont: bool, ev: FlowEvent) {
        let now = ev.at;
        let delivered_now = match ev.outcome {
            FlowOutcome::Completed => {
                let sub = &self.workers[w].subs[s];
                if cont {
                    sub.push_target - sub.push_delivered
                } else {
                    sub.push_plan.len()
                }
            }
            FlowOutcome::DeadlineReached { chunks_done, .. } => chunks_done,
            FlowOutcome::Cancelled { .. } => {
                unreachable!("cancelled flows are reaped at the fault site")
            }
        };
        let base = self.workers[w].subs[s].push_delivered;
        self.collect_intact(&ev, base, delivered_now, false, w, s);
        let sub = &mut self.workers[w].subs[s];
        sub.push_delivered += delivered_now;
        if !cont && sub.push_delivered < sub.push_target {
            // Straggler this round: keep transmitting up to the target
            // (MTA plus any RSP-mandatory rows), without a deadline.
            let rest: Vec<RowId> = sub.push_plan[sub.push_delivered..sub.push_target].to_vec();
            let chunks = {
                let ws = &self.workers[w];
                self.scaled_chunks(ws, &rest)
            };
            let link = shard_link(w, self.n_shards, s);
            let id = self
                .ctx
                .cluster
                .transport
                .start_flow(now, FlowSpec::new(link, chunks));
            self.track_flow(id, FlowCtx::Push { w, s, cont: true });
            return;
        }
        self.maybe_finish_push(w, s, now);
    }

    /// Ends a push leg — unless mandatory rows were lost in flight, in
    /// which case they retransmit first. Best-effort applies to the
    /// bulk of the gradient rows only: a mandatory row sits at the RSP
    /// staleness bound, and dropping it would stall every peer at the
    /// gate until this worker's *next* push, so the transport keeps
    /// resending it until it lands (progress is guaranteed: per-chunk
    /// loss probability is capped below 1).
    fn maybe_finish_push(&mut self, w: usize, s: usize, now: Time) {
        if self.ctx.cluster.transport.loss_enabled() {
            let missing = self.missing_mandatory(w, s);
            if !missing.is_empty() {
                obs_shard!(
                    self.ctx.journal,
                    now,
                    self.shard_tag(s),
                    EventKind::Retransmit {
                        w: w as u32,
                        rows: missing.len() as u32,
                        class: "mandatory",
                    }
                );
                let chunks = {
                    let ws = &self.workers[w];
                    self.scaled_chunks(ws, &missing)
                };
                self.workers[w].subs[s].push_retry = missing;
                let link = shard_link(w, self.n_shards, s);
                let id = self
                    .ctx
                    .cluster
                    .transport
                    .start_flow(now, FlowSpec::new(link, chunks));
                self.track_flow(id, FlowCtx::PushRetry { w, s });
                return;
            }
        }
        self.finish_push_sub(w, s, now);
    }

    /// Mandatory-prefix rows of one leg that have not yet arrived intact.
    fn missing_mandatory(&self, w: usize, s: usize) -> Vec<RowId> {
        let sub = &self.workers[w].subs[s];
        sub.push_plan[..sub.push_mandatory.min(sub.push_delivered)]
            .iter()
            .copied()
            .filter(|id| !sub.push_intact.contains(id))
            .collect()
    }

    /// A mandatory-row retransmit round finished: bank the survivors and
    /// go around again if the loss model ate some of them too.
    fn on_push_retry_flow(&mut self, w: usize, s: usize, ev: FlowEvent) {
        debug_assert!(
            matches!(ev.outcome, FlowOutcome::Completed),
            "retry rounds have no deadline"
        );
        let report = self.ctx.cluster.transport.take_report(ev.id);
        let retry = std::mem::take(&mut self.workers[w].subs[s].push_retry);
        if let Some(rep) = report.as_ref() {
            let lost = rep.lost_chunks();
            let corrupt = rep.corrupt_chunks();
            if lost + corrupt > 0 {
                obs_shard!(
                    self.ctx.journal,
                    ev.at,
                    self.shard_tag(s),
                    EventKind::Loss {
                        w: w as u32,
                        lost: lost as u32,
                        corrupt: corrupt as u32,
                        chunks: rep.fates.len() as u32,
                    }
                );
            }
        }
        let sub = &mut self.workers[w].subs[s];
        match report {
            Some(rep) => sub.push_intact.extend(
                retry
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| rep.intact(i))
                    .map(|(_, &id)| id),
            ),
            None => sub.push_intact.extend(retry.iter().copied()),
        }
        self.maybe_finish_push(w, s, ev.at);
    }

    fn finish_push_sub(&mut self, w: usize, s: usize, now: Time) {
        let n = if self.pipeline {
            self.workers[w].comm_iter
        } else {
            self.workers[w].iter + 1
        };
        let (delivered, total_rows, duration, mta_rows) = {
            let sub = &self.workers[w].subs[s];
            (
                sub.push_delivered,
                sub.push_plan.len(),
                (now - sub.push_started).max(1e-6),
                sub.mta_rows,
            )
        };
        // Journal byte sizes are captured before the commit below:
        // committing zeroes the accumulator and rolls the residuals,
        // which changes a content-sized codec's payloads (one-bit sizes
        // are width-only, so the ordering is immaterial there).
        let journal_bytes: u64 = if self.ctx.journal.enabled() {
            let ws = &self.workers[w];
            let upto = delivered.min(ws.subs[s].push_plan.len());
            self.scaled_chunks(ws, &ws.subs[s].push_plan[..upto])
                .iter()
                .sum()
        } else {
            0
        };
        let mut payloads = {
            // Gradient rows are best-effort: with a loss model installed
            // only the rows whose chunks survived are committed; the rest
            // keep their error-feedback residual and stale row iteration,
            // so they age toward the RSP-mandatory bound and retransmit
            // as mandatory rows of a later push.
            let plan: Vec<RowId> = if self.ctx.cluster.transport.loss_enabled() {
                std::mem::take(&mut self.workers[w].subs[s].push_intact)
            } else {
                self.workers[w].subs[s].push_plan[..delivered].to_vec()
            };
            self.workers[w].worker.commit_push(&plan, n)
        };
        let min_before = self.server.versions(s).global_min();
        if let Some(plane) = self.agg_plane.as_mut() {
            // Fold the push into the member's merge window while the
            // row ids are still global (`on_push` translates them to
            // shard-local in place). The plane is accounting only — it
            // never feeds back into the simulation.
            let ids: Vec<usize> = payloads.iter().map(|(id, _)| id.0).collect();
            plane.on_member_push(w, s, &ids, n);
        }
        self.server.on_push(s, w, n, &mut payloads);
        let min_advanced = self.server.versions(s).global_min() > min_before;
        self.peak_version_bytes = self
            .peak_version_bytes
            .max(self.server.version_store_bytes());
        #[cfg(debug_assertions)]
        self.check_version_invariants(s, n);
        self.trackers[s].report(w, delivered, duration, mta_rows);
        self.last_pushed[w] = n;
        if self.ctx.journal.enabled() {
            let tag = self.shard_tag(s);
            self.ctx.journal.record_shard(
                now,
                tag,
                EventKind::PushEnd {
                    w: w as u32,
                    iter: n,
                    rows: delivered as u32,
                    bytes: journal_bytes,
                },
            );
            self.ctx.journal.record_shard(
                now,
                tag,
                EventKind::Mta {
                    w: w as u32,
                    secs: duration,
                    budget: self.trackers[s].get(),
                },
            );
        }

        {
            let ws = &mut self.workers[w];
            ws.cycle_push_delivered += delivered;
            ws.cycle_push_total += total_rows;
            ws.subs[s].push_done = true;
        }
        if self.ctx.cfg.record_micro
            && w == 0
            && self.workers[w]
                .subs
                .iter()
                .all(|sp| !sp.engaged || sp.push_done)
        {
            let fastest = *self.last_pushed.iter().max().expect("non-empty");
            let ws = &self.workers[w];
            let sample = MicroSample {
                time: now,
                bandwidth_bps: self.ctx.cluster.transport.link_rate_bps(shard_link(
                    w,
                    self.n_shards,
                    0,
                )),
                transmission_rate: if ws.cycle_push_total == 0 {
                    1.0
                } else {
                    ws.cycle_push_delivered as f64 / ws.cycle_push_total as f64
                },
                staleness: fastest - n,
            };
            self.ctx.collector.record_micro(sample);
        }

        // RSP gate (Algorithm 2 lines 7–9): this shard's pull waits for
        // the stragglers' pushes to *this* shard only.
        self.workers[w].subs[s].gate_entered = now;
        if self.ctx.journal.enabled() {
            let (_, row, _) = self.server.versions_mut(s).stalest_cell();
            let min = self.server.versions_mut(s).global_min();
            let row = self.server.map().to_global(s, RowId(row)).0;
            self.ctx.journal.record_shard(
                now,
                self.shard_tag(s),
                EventKind::GateEnter {
                    w: w as u32,
                    iter: n,
                    min,
                    lead: n.saturating_sub(min),
                    row: row as i64,
                },
            );
        }
        if self.server.gate_ok(s, n) {
            self.grant_pull(w, s, now);
        } else {
            self.set_comm_state_sub(w, now, DeviceState::Stall);
            self.waiting.push((w, s, n));
        }
        // The gate depends only on this shard's min(V) (and on flags
        // whose own transitions re-drain): if the push did not advance
        // it, no waiting leg's verdict changed and the scan is skipped.
        if min_advanced {
            self.drain_waiting(now);
        }
    }

    fn drain_waiting(&mut self, now: Time) {
        let waiting = std::mem::take(&mut self.waiting);
        for (w, s, n) in waiting {
            if !self.ctx.offline[w]
                && !self.path_blocked(w)
                && !self.ctx.server_down[s]
                && self.server.gate_ok(s, n)
            {
                self.grant_pull(w, s, now);
            } else {
                self.waiting.push((w, s, n));
            }
        }
    }

    fn grant_pull(&mut self, w: usize, s: usize, now: Time) {
        obs_shard!(
            self.ctx.journal,
            now,
            self.shard_tag(s),
            EventKind::GateExit {
                w: w as u32,
                iter: self.workers[w].comm_iter,
                waited: now - self.workers[w].subs[s].gate_entered,
            }
        );
        if let Some(plane) = self.agg_plane.as_mut() {
            // Granting a pull closes the member's merge window: the
            // merged rows go upstream ahead of the fresh fetch, and the
            // pull fans out downstream through the aggregator.
            let merged = plane.flush(w, s);
            let agg = plane.map().agg_of(w) as u32;
            plane.on_member_pull();
            if let Some(m) = merged {
                obs_shard!(
                    self.ctx.journal,
                    now,
                    self.shard_tag(s),
                    EventKind::AggMerge {
                        agg,
                        rows: m.rows as u32,
                        raw: m.raw_rows as u32,
                        pushes: m.pushes as u32,
                        ver: m.max_version,
                    }
                );
            }
        }
        let mut plan = std::mem::take(&mut self.workers[w].subs[s].pull_plan);
        self.server.plan_pull_into(s, w, &mut plan);
        if plan.is_empty() {
            self.workers[w].subs[s].pull_plan = plan;
            self.finish_sub(w, s, now);
            return;
        }
        let mta_rows = mta::mta_rows(self.server.map().shard_rows(s), self.threshold);
        {
            let sub = &mut self.workers[w].subs[s];
            sub.pull_target = mta_rows.min(plan.len());
            sub.pull_plan = plan;
            sub.pull_delivered = 0;
            sub.pull_intact.clear();
        }
        let budget = self.trackers[s].get();
        let chunks: Vec<u64> = {
            let sub = &self.workers[w].subs[s];
            sub.pull_plan
                .iter()
                .map(|&id| {
                    self.ctx
                        .cluster
                        .scaled_row_bytes(self.server.payload_bytes_for(w, id))
                })
                .collect()
        };
        if self.ctx.journal.enabled() {
            let ws = &self.workers[w];
            let tag = self.shard_tag(s);
            self.ctx.journal.record_shard(
                now,
                tag,
                EventKind::PullStart {
                    w: w as u32,
                    iter: ws.comm_iter,
                    bytes: chunks.iter().sum(),
                },
            );
            self.ctx.journal.record_shard(
                now,
                tag,
                EventKind::RowPull {
                    w: w as u32,
                    iter: ws.comm_iter,
                    rows: ws.subs[s].pull_plan.iter().map(|id| id.0 as u32).collect(),
                },
            );
        }
        self.set_comm_state(w, now, DeviceState::Communicate);
        let link = shard_link(w, self.n_shards, s);
        let id = self
            .ctx
            .cluster
            .transport
            .start_flow(now, FlowSpec::new(link, chunks).with_deadline(now + budget));
        self.track_flow(id, FlowCtx::Pull { w, s, cont: false });
    }

    fn on_pull_flow(&mut self, w: usize, s: usize, cont: bool, ev: FlowEvent) {
        let now = ev.at;
        let delivered_now = match ev.outcome {
            FlowOutcome::Completed => {
                let sub = &self.workers[w].subs[s];
                if cont {
                    sub.pull_target - sub.pull_delivered
                } else {
                    sub.pull_plan.len()
                }
            }
            FlowOutcome::DeadlineReached { chunks_done, .. } => chunks_done,
            FlowOutcome::Cancelled { .. } => {
                unreachable!("cancelled flows are reaped at the fault site")
            }
        };
        let base = self.workers[w].subs[s].pull_delivered;
        self.collect_intact(&ev, base, delivered_now, true, w, s);
        let sub = &mut self.workers[w].subs[s];
        sub.pull_delivered += delivered_now;
        if !cont && sub.pull_delivered < sub.pull_target {
            let rest: Vec<RowId> = sub.pull_plan[sub.pull_delivered..sub.pull_target].to_vec();
            let chunks: Vec<u64> = rest
                .iter()
                .map(|&id| {
                    self.ctx
                        .cluster
                        .scaled_row_bytes(self.server.payload_bytes_for(w, id))
                })
                .collect();
            let link = shard_link(w, self.n_shards, s);
            let id = self
                .ctx
                .cluster
                .transport
                .start_flow(now, FlowSpec::new(link, chunks));
            self.track_flow(id, FlowCtx::Pull { w, s, cont: true });
            return;
        }
        // Apply whatever arrived (intact rows only under a loss model:
        // a dropped pull row stays pending on the server and re-ranks
        // into a later pull instead of being silently consumed).
        let delivered = self.workers[w].subs[s].pull_delivered;
        let rows: Vec<RowId> = if self.ctx.cluster.transport.loss_enabled() {
            std::mem::take(&mut self.workers[w].subs[s].pull_intact)
        } else {
            self.workers[w].subs[s].pull_plan[..delivered].to_vec()
        };
        obs_shard!(
            self.ctx.journal,
            now,
            self.shard_tag(s),
            EventKind::PullEnd {
                w: w as u32,
                iter: self.workers[w].comm_iter,
            }
        );
        let payload = self.server.commit_pull(s, w, &rows);
        let ws = &mut self.workers[w];
        ws.worker.apply_pulled(ws.model.params_mut(), &payload);
        // The model just changed; in pipeline mode a compute may be in
        // flight for this worker, so any prefetched gradients are stale.
        // The sampled batch indices stay valid.
        if let Some(p) = self.pending[w].as_mut() {
            p.result = None;
        }
        self.finish_sub(w, s, now);
    }

    /// Marks one shard's leg done; the worker's cycle completes once
    /// every engaged leg has finished its push *and* pull.
    fn finish_sub(&mut self, w: usize, s: usize, now: Time) {
        self.workers[w].subs[s].done = true;
        if self.workers[w].subs.iter().all(|sp| !sp.engaged || sp.done) {
            self.complete_cycle(w, now);
        } else {
            self.set_comm_state_sub(w, now, DeviceState::Stall);
        }
    }

    fn complete_cycle(&mut self, w: usize, now: Time) {
        if self.pipeline {
            let applied = self.workers[w].comm_iter;
            let ws = &mut self.workers[w];
            ws.applied_iter = applied;
            ws.comm_busy = false;
            let latest = ws.iter;
            if latest > applied {
                // Fresh gradients accumulated during the cycle: keep the
                // pipe full.
                self.begin_push(w, now, latest);
            } else if !self.workers[w].computing {
                self.ctx.set_state(
                    w,
                    now,
                    if now >= self.ctx.duration() {
                        DeviceState::Idle
                    } else {
                        DeviceState::Stall
                    },
                );
            }
            if self.workers[w].pipe_waiting {
                self.maybe_continue_compute(w, now);
            }
            return;
        }
        self.complete_iteration(w, now);
    }

    /// Runs the auto-threshold controller if its window elapsed.
    fn maybe_adjust_threshold(&mut self, now: Time) {
        let Some(mut auto) = self.auto else { return };
        let total_iters: u64 = self.workers.iter().map(|w| w.iter).sum();
        if total_iters < auto.last_iters + auto.window_iters || now <= auto.last_time {
            return;
        }
        // Cluster stall share over the window.
        let n = self.workers.len() as f64;
        let stall: f64 = self
            .ctx
            .timelines
            .iter()
            .map(|t| t.time_in_between(DeviceState::Stall, auto.last_time, now))
            .sum();
        let share = stall / ((now - auto.last_time) * n);
        let old = self.threshold;
        let new = if share > auto.stall_hi {
            ((old as f64 * 1.5).ceil() as u32).min(auto.max)
        } else if share < auto.stall_lo {
            (old.saturating_sub((old as f64 * 0.25).ceil() as u32)).max(auto.min)
        } else {
            old
        };
        if new != old {
            obs!(
                self.ctx.journal,
                now,
                EventKind::AutoThreshold { threshold: new }
            );
            self.threshold = new;
            self.server.set_threshold(new);
            for ws in &mut self.workers {
                ws.worker.set_threshold(new);
            }
            // A loosened gate may unblock waiting pulls immediately.
            self.drain_waiting(now);
        }
        auto.last_iters = total_iters;
        auto.last_time = now;
        self.auto = Some(auto);
    }

    /// Runs the adaptive-bound controller (`roga`) if its window elapsed.
    ///
    /// The new bound is a pure function of the channel's per-link EWMAs
    /// at a deterministic evaluation point, so runs stay byte-identical
    /// across thread counts. Narrowing is clamped by
    /// [`RowEngine::pending_bound_floor`] so every in-flight iteration
    /// still satisfies the *instantaneous* bound at its next
    /// `gate_enter`.
    fn maybe_adapt_bound(&mut self, now: Time) {
        let Some(mut ab) = self.adaptive else { return };
        let total_iters: u64 = self.workers.iter().map(|w| w.iter).sum();
        if total_iters < ab.last_iters + ab.window_iters {
            return;
        }
        ab.last_iters = total_iters;
        self.adaptive = Some(ab);
        let tp = &self.ctx.cluster.transport;
        let mut max_loss = 0.0f64;
        let mut min_good = f64::INFINITY;
        let mut max_good = 0.0f64;
        for w in 0..self.workers.len() {
            for s in 0..self.n_shards {
                let link = shard_link(w, self.n_shards, s);
                max_loss = max_loss.max(tp.estimated_loss_rate(link));
                let good = tp.estimated_goodput_rate(link);
                min_good = min_good.min(good);
                max_good = max_good.max(good);
            }
        }
        // Straggler-link share: how far the weakest link's goodput falls
        // below the strongest's. The channel's global sharing divisor
        // cancels in the ratio, leaving pure fade × delivery probability.
        let lag = if max_good > 0.0 {
            (1.0 - min_good / max_good).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let stress = (2.5 * max_loss + lag).min(1.0);
        let span = f64::from(ab.max - ab.min);
        let desired = ab.min + (stress * span).round() as u32;
        let applied = if desired < self.threshold {
            desired.max(self.pending_bound_floor())
        } else {
            desired
        };
        if applied != self.threshold {
            obs!(
                self.ctx.journal,
                now,
                EventKind::AutoThreshold { threshold: applied }
            );
            self.threshold = applied;
            self.server.set_threshold(applied);
            for ws in &mut self.workers {
                ws.worker.set_threshold(applied);
            }
            // Widening may unblock waiting pulls immediately.
            self.drain_waiting(now);
        }
    }

    /// Runs the per-link codec selector (`--codec auto`) if its window
    /// elapsed. See [`CodecAuto`] for the policy; per-worker stress
    /// combines the worst loss EWMA across the worker's shard links with
    /// how far its weakest link's goodput lags the cluster's best.
    fn maybe_select_codecs(&mut self, now: Time) {
        let Some(mut ca) = self.codec_auto else {
            return;
        };
        let total_iters: u64 = self.workers.iter().map(|w| w.iter).sum();
        if total_iters < ca.last_iters + ca.window_iters {
            return;
        }
        ca.last_iters = total_iters;
        self.codec_auto = Some(ca);
        let decisions: Vec<(usize, CodecChoice)> = {
            let tp = &self.ctx.cluster.transport;
            let mut max_good = 0.0f64;
            for w in 0..self.workers.len() {
                for s in 0..self.n_shards {
                    let link = shard_link(w, self.n_shards, s);
                    max_good = max_good.max(tp.estimated_goodput_rate(link));
                }
            }
            (0..self.workers.len())
                .filter(|&w| !self.ctx.offline[w])
                .map(|w| {
                    let mut loss = 0.0f64;
                    let mut good = f64::INFINITY;
                    for s in 0..self.n_shards {
                        let link = shard_link(w, self.n_shards, s);
                        loss = loss.max(tp.estimated_loss_rate(link));
                        good = good.min(tp.estimated_goodput_rate(link));
                    }
                    let lag = if max_good > 0.0 {
                        (1.0 - good / max_good).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let stress = (2.5 * loss + lag).min(1.0);
                    let current_sparse = self.workers[w].worker.codec().name() == "sparse";
                    // Hysteresis: inside the band a link keeps whatever
                    // codec it has, so EWMA jitter cannot flap it.
                    let choice = if stress > ca.stress_hi {
                        CodecChoice::Sparse
                    } else if stress < ca.stress_lo || !current_sparse {
                        CodecChoice::OneBit
                    } else {
                        CodecChoice::Sparse
                    };
                    (w, choice)
                })
                .collect()
        };
        for (w, choice) in decisions {
            let codec = choice.build();
            if self.workers[w].worker.codec().name() == codec.name() {
                continue;
            }
            // Residuals carry across the switch on both sides (the
            // error-feedback invariant holds for any encoder), so no
            // gradient mass is lost at the boundary.
            self.workers[w].worker.set_codec(codec);
            self.server.set_codec(w, codec);
            obs!(
                self.ctx.journal,
                now,
                EventKind::CodecSelect {
                    w: w as u32,
                    codec: codec.name(),
                }
            );
        }
    }

    /// The narrowest bound the in-flight state admits. Any iteration
    /// that can reach a `gate_enter` without passing a *new* pull grant
    /// must still satisfy the instantaneous bound there, so narrowing
    /// clamps here. Legs already parked at a gate are exempt: their next
    /// grant re-checks under the new bound before the cycle proceeds.
    fn pending_bound_floor(&self) -> u32 {
        let mut floor: u64 = 0;
        for (w, ws) in self.workers.iter().enumerate() {
            if self.ctx.offline[w] {
                continue;
            }
            // Highest iteration this worker can push without a new pull
            // grant: the cycle it is computing or pushing now, plus one
            // more once the current cycle's pulls have been granted.
            let next = ws.iter.max(ws.comm_iter) + 1;
            for s in 0..self.n_shards {
                if self.waiting.iter().any(|&(ww, ss, _)| ww == w && ss == s) {
                    continue;
                }
                let min = self.server.versions(s).global_min();
                floor = floor.max(next.saturating_sub(min));
            }
        }
        u32::try_from(floor).unwrap_or(u32::MAX)
    }

    fn complete_iteration(&mut self, w: usize, now: Time) {
        self.workers[w].iter += 1;
        self.ctx.collector.record_iteration(w);
        let iter = self.workers[w].iter;
        obs!(
            self.ctx.journal,
            now,
            EventKind::IterEnd { w: w as u32, iter }
        );
        self.ctx.maybe_eval(w, iter, now, &self.workers[w].model);
        self.maybe_adjust_threshold(now);
        self.maybe_adapt_bound(now);
        self.maybe_select_codecs(now);
        if now < self.ctx.duration() {
            self.start_compute(w, now);
        } else {
            self.workers[w].done = true;
            self.ctx.set_state(w, now, DeviceState::Idle);
        }
    }

    // ----- fault injection ------------------------------------------------

    fn on_fault(&mut self, f: FaultEvent, now: Time) {
        let tag = if self.n_shards > 1 {
            f.shard().map_or(Event::NO_SHARD, |s| s as i64)
        } else {
            Event::NO_SHARD
        };
        obs_shard!(
            self.ctx.journal,
            now,
            tag,
            EventKind::Fault {
                kind: f.name(),
                // Aggregator faults scope `w` to the aggregator index
                // (the `kind` disambiguates); server faults use the
                // shard tag and leave `w` at -1.
                w: f.worker()
                    .or_else(|| f.aggregator())
                    .map_or(-1, |w| w as i64),
            }
        );
        match f {
            FaultEvent::WorkerDown(w) => self.on_worker_down(w, now),
            FaultEvent::WorkerUp(w) => self.on_worker_up(w, now),
            FaultEvent::BlackoutStart(w) => self.on_blackout_start(w, now),
            FaultEvent::BlackoutEnd(w) => self.on_blackout_end(w, now),
            FaultEvent::ServerDown(s) => self.on_server_down(s, now),
            FaultEvent::ServerUp(s) => self.on_server_up(s, now),
            FaultEvent::AggregatorDown(a) => self.on_aggregator_down(a, now),
            FaultEvent::AggregatorUp(a) => self.on_aggregator_up(a, now),
        }
    }

    /// Drops a worker's prefetched draw, recycling its buffer.
    fn discard_pending(&mut self, w: usize) {
        if let Some(PendingDraw {
            result: Some((grads, _)),
            ..
        }) = self.pending[w].take()
        {
            self.ctx.recycle_grads(grads);
        }
    }

    /// Cancels every in-flight transfer of `target`, returning the
    /// contexts so the caller can decide what (if anything) resumes.
    /// Cancelled transfers acknowledge nothing: every byte already on
    /// the air is wasted and any retransmission starts from scratch.
    fn cancel_flows_of(&mut self, target: usize) -> Vec<FlowCtx> {
        let ids: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, c)| c.worker() == target)
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .map(|id| {
                let ctx = self.untrack_flow(id).expect("just listed");
                self.ctx.cluster.transport.cancel_flow(id);
                ctx
            })
            .collect()
    }

    /// Marks what a cancelled transfer should restart as once
    /// connectivity returns. `comm_busy` stays true for suspended
    /// push/pull cycles so pipeline mode cannot start a second cycle on
    /// top of the parked one.
    fn suspend_ctx(&mut self, ctx: FlowCtx) {
        match ctx {
            FlowCtx::Push { w, s, .. } | FlowCtx::PushRetry { w, s } => {
                self.workers[w].subs[s].resume = Some(SubResume::Push);
            }
            FlowCtx::Pull { w, s, .. } => {
                self.workers[w].subs[s].resume = Some(SubResume::PullGate);
            }
            FlowCtx::Resync { w } => {
                self.workers[w].resume = Some(Resume::Resync);
            }
        }
    }

    fn on_worker_down(&mut self, w: usize, now: Time) {
        if self.ctx.offline[w] {
            return;
        }
        self.ctx.offline[w] = true;
        // Every in-flight transfer dies with the device; nothing resumes
        // (rejoin rebuilds the cycle from the resynced model instead).
        self.cancel_flows_of(w);
        self.waiting.retain(|&(x, _, _)| x != w);
        if self.workers[w].computing {
            // Its ComputeDone timer is still queued; swallow on arrival.
            self.stale_timers[w] += 1;
        }
        let ws = &mut self.workers[w];
        ws.computing = false;
        ws.comm_busy = false;
        ws.pipe_waiting = false;
        ws.resume = None;
        for sub in &mut ws.subs {
            sub.engaged = false;
            sub.push_done = false;
            sub.done = false;
            sub.resume = None;
        }
        self.server.deactivate_worker(w);
        self.ctx.set_state(w, now, DeviceState::Offline);
        // The departed worker's frozen rows age out of min(V): gated
        // pulls of the survivors may proceed — the membership move a
        // BSP-style barrier cannot make.
        self.drain_waiting(now);
    }

    fn on_worker_up(&mut self, w: usize, now: Time) {
        if !self.ctx.offline[w] {
            return;
        }
        if self.ctx.any_server_down() || self.path_blocked(w) {
            // Powered on but unreachable (a resync needs every shard):
            // resync once the full path returns.
            self.workers[w].resume = Some(Resume::Resync);
            return;
        }
        self.begin_resync(w, now);
    }

    /// Starts the full-model transfer that brings a rejoining worker
    /// back in sync before it may train again.
    ///
    /// Resync is reliable-class traffic: with a loss model installed the
    /// model is segmented so a lost chunk retransmits ~64 KiB instead of
    /// the whole model, tracked by a [`ReliableTransfer`]. Without one,
    /// the pre-loss single-chunk flow is byte-identical.
    fn begin_resync(&mut self, w: usize, now: Time) {
        obs!(
            self.ctx.journal,
            now,
            EventKind::ResyncStart {
                w: w as u32,
                bytes: self.model_wire_bytes,
            }
        );
        self.ctx.set_state(w, now, DeviceState::Communicate);
        let chunks = if self.ctx.cluster.transport.loss_enabled() {
            let chunks = segment_chunks(self.model_wire_bytes);
            self.void_retry(w);
            self.retx[w] = Some(ReliableTransfer::new(
                chunks.clone(),
                BackoffPolicy::default(),
            ));
            chunks
        } else {
            vec![self.model_wire_bytes]
        };
        let link = shard_link(w, self.n_shards, 0);
        let id = self
            .ctx
            .cluster
            .transport
            .start_flow(now, FlowSpec::new(link, chunks));
        self.track_flow(id, FlowCtx::Resync { w });
    }

    /// A resync flow round finished: acknowledge the surviving chunks
    /// and either complete the rejoin or back off and retransmit.
    fn on_resync_flow(&mut self, w: usize, ev: FlowEvent) {
        let now = ev.at;
        let report = self.ctx.cluster.transport.take_report(ev.id);
        let Some(retx) = self.retx[w].as_mut() else {
            // No loss model: the single-chunk transfer always lands whole.
            self.finish_resync(w, now);
            return;
        };
        let transmitted = retx.pending_count();
        let fates = report.as_ref().map(|r| r.fates.as_slice());
        match retx.on_round(fates, transmitted) {
            ReliableProgress::Done => {
                self.retx[w] = None;
                self.finish_resync(w, now);
            }
            ReliableProgress::Retry { delay } => {
                // Some chunks died in flight: wait out the capped
                // exponential backoff, then resend the survivors.
                if let Some(r) = report.as_ref() {
                    obs!(
                        self.ctx.journal,
                        now,
                        EventKind::Loss {
                            w: w as u32,
                            lost: r.lost_chunks() as u32,
                            corrupt: r.corrupt_chunks() as u32,
                            chunks: r.fates.len() as u32,
                        }
                    );
                }
                obs!(
                    self.ctx.journal,
                    now,
                    EventKind::Backoff {
                        w: w as u32,
                        until: now + delay,
                    }
                );
                self.ctx.set_state(w, now, DeviceState::Stall);
                self.schedule_retry(w, now + delay);
            }
        }
    }

    /// Arms the backoff timer for a worker's reliable retransmit.
    fn schedule_retry(&mut self, w: usize, at: Time) {
        self.ctx.queue.push(at, Ev::NetRetry(w));
        self.retry_armed[w] = true;
    }

    /// Voids a queued backoff timer (it is swallowed on arrival).
    fn void_retry(&mut self, w: usize) {
        if self.retry_armed[w] {
            self.stale_retries[w] += 1;
            self.retry_armed[w] = false;
        }
    }

    /// Abandons a worker's reliable transfer at a fault site. If the
    /// worker should resync again once connectivity returns, the caller
    /// records `Resume::Resync` (retransmit-from-scratch semantics).
    fn clear_retx(&mut self, w: usize) -> bool {
        self.void_retry(w);
        self.retx[w].take().is_some()
    }

    /// A reliable-class backoff expired: resend the outstanding chunks,
    /// or park the transfer if the path is down.
    fn on_net_retry(&mut self, w: usize, now: Time) {
        if self.stale_retries[w] > 0 {
            self.stale_retries[w] -= 1;
            return;
        }
        self.retry_armed[w] = false;
        let Some(retx) = self.retx[w].as_ref() else {
            return;
        };
        if self.ctx.any_server_down() || self.path_blocked(w) {
            // Path went down during the backoff: restart the resync from
            // scratch once connectivity returns.
            self.retx[w] = None;
            self.workers[w].resume = Some(Resume::Resync);
            return;
        }
        let chunks = retx.pending_chunks();
        obs!(
            self.ctx.journal,
            now,
            EventKind::Retransmit {
                w: w as u32,
                rows: chunks.len() as u32,
                class: "reliable",
            }
        );
        self.ctx.set_state(w, now, DeviceState::Communicate);
        let link = shard_link(w, self.n_shards, 0);
        let id = self
            .ctx
            .cluster
            .transport
            .start_flow(now, FlowSpec::new(link, chunks));
        self.track_flow(id, FlowCtx::Resync { w });
    }

    /// Debug-build invariant watchdog: each shard's min(V) may never
    /// regress, and in the static-threshold sequential configuration —
    /// while no shard outage made a cycle skip a shard — no push may
    /// carry an iteration past the RSP staleness bound (pipeline mode
    /// runs compute bounded-ahead of the gated comm cycle, so its pushes
    /// may legitimately lead by the pipeline depth as well).
    #[cfg(debug_assertions)]
    fn check_version_invariants(&mut self, s: usize, pushed_iter: u64) {
        let min = self.server.versions_mut(s).global_min();
        assert!(
            min >= self.last_global_min[s],
            "shard {s} global_min regressed: {} -> {min}",
            self.last_global_min[s]
        );
        self.last_global_min[s] = min;
        if self.auto.is_none() && !self.pipeline && !self.skipped_shard_push {
            let bound = u64::from(self.threshold.max(1));
            assert!(
                pushed_iter <= min + bound,
                "staleness bound violated on shard {s}: pushed iter {pushed_iter}, min {min}, bound {bound}"
            );
        }
    }

    /// Completes a rejoin: the worker adopts the most advanced online
    /// peer's model (ties break to the lowest index) — the closest
    /// stand-in the simulation has for the server streaming its current
    /// model; any choice within the RSP staleness bound is admissible.
    /// Error-feedback residuals, momentum and Adam state are reset (the
    /// paper's defined policy: stale compensation must not leak into the
    /// adopted model), row iterations are stamped to the adopted
    /// iteration, and every shard's version rows fast-forward to match.
    fn finish_resync(&mut self, w: usize, now: Time) {
        let mut reference: Option<usize> = None;
        for (i, ws) in self.workers.iter().enumerate() {
            if i == w || self.ctx.offline[i] {
                continue;
            }
            if reference.is_none_or(|r| ws.iter > self.workers[r].iter) {
                reference = Some(i);
            }
        }
        if let Some(r) = reference {
            let model = self.workers[r].model.clone();
            let iter = self.workers[r].iter;
            let ws = &mut self.workers[w];
            ws.model = model;
            ws.iter = iter;
        }
        let n = self.workers[w].iter;
        obs!(
            self.ctx.journal,
            now,
            EventKind::ResyncEnd {
                w: w as u32,
                iter: n
            }
        );
        let ws = &mut self.workers[w];
        ws.applied_iter = n;
        ws.comm_iter = n;
        ws.comm_busy = false;
        ws.pipe_waiting = false;
        ws.resume = None;
        for sub in &mut ws.subs {
            sub.engaged = false;
            sub.push_done = false;
            sub.done = false;
            sub.resume = None;
        }
        ws.worker.reset_for_rejoin(n);
        self.server.rejoin_worker(w, n);
        self.ctx.offline[w] = false;
        self.last_pushed[w] = n;
        self.discard_pending(w);
        if now < self.ctx.duration() {
            self.start_compute(w, now);
        } else {
            self.workers[w].done = true;
            self.ctx.set_state(w, now, DeviceState::Idle);
        }
        // The freshly stamped member can only raise min(V).
        self.drain_waiting(now);
    }

    fn on_blackout_start(&mut self, w: usize, now: Time) {
        if self.ctx.link_down[w] {
            return;
        }
        self.ctx.link_down[w] = true;
        for ctx in self.cancel_flows_of(w) {
            self.suspend_ctx(ctx);
        }
        // A reliable transfer in backoff has no flow to cancel; abandon
        // its state and restart the resync when the link returns.
        if self.clear_retx(w) {
            self.workers[w].resume = Some(Resume::Resync);
        }
        if !self.ctx.offline[w] && !self.workers[w].done {
            self.set_comm_state(w, now, DeviceState::Stall);
        }
    }

    fn on_blackout_end(&mut self, w: usize, now: Time) {
        if !self.ctx.link_down[w] {
            return;
        }
        self.ctx.link_down[w] = false;
        self.resume_worker(w, now);
        self.drain_waiting(now);
    }

    /// An edge aggregator fails: every member worker is severed from
    /// the parameter plane at once — in-flight transfers die and resume
    /// when the aggregator returns, exactly as a per-member blackout
    /// would behave (the members' own radios stay up, so `link_down`
    /// is untouched; `agg_down` is a separate mask composed by
    /// [`Self::path_blocked`]).
    fn on_aggregator_down(&mut self, a: usize, now: Time) {
        if self.agg_down[a] {
            return;
        }
        self.agg_down[a] = true;
        let members: Vec<usize> = self
            .agg_plane
            .as_ref()
            .expect("aggregator faults are validated against the topology")
            .map()
            .members(a)
            .to_vec();
        for w in members {
            for ctx in self.cancel_flows_of(w) {
                self.suspend_ctx(ctx);
            }
            if self.clear_retx(w) {
                self.workers[w].resume = Some(Resume::Resync);
            }
            if !self.ctx.offline[w] && !self.workers[w].done {
                self.set_comm_state(w, now, DeviceState::Stall);
            }
        }
    }

    /// A failed aggregator returns: members whose own link is up resume
    /// whatever the outage suspended.
    fn on_aggregator_up(&mut self, a: usize, now: Time) {
        if !self.agg_down[a] {
            return;
        }
        self.agg_down[a] = false;
        let members: Vec<usize> = self
            .agg_plane
            .as_ref()
            .expect("aggregator faults are validated against the topology")
            .map()
            .members(a)
            .to_vec();
        for w in members {
            self.resume_worker(w, now);
        }
        self.drain_waiting(now);
    }

    fn on_server_down(&mut self, shard: usize, now: Time) {
        if self.ctx.server_down[shard] {
            return;
        }
        self.ctx.server_down[shard] = true;
        // Flows to the failed shard die; resync flows carry whole-model
        // state and need every shard, so they die with it too.
        let ids: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, c)| c.shard().is_none_or(|cs| cs == shard))
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            let ctx = self.untrack_flow(id).expect("just listed");
            self.ctx.cluster.transport.cancel_flow(id);
            let w = ctx.worker();
            self.suspend_ctx(ctx);
            if !self.ctx.offline[w] && !self.workers[w].done {
                self.set_comm_state_sub(w, now, DeviceState::Stall);
            }
        }
        for w in 0..self.workers.len() {
            if self.clear_retx(w) {
                self.workers[w].resume = Some(Resume::Resync);
            }
        }
    }

    fn on_server_up(&mut self, shard: usize, now: Time) {
        if !self.ctx.server_down[shard] {
            return;
        }
        self.ctx.server_down[shard] = false;
        for w in 0..self.workers.len() {
            if !self.path_blocked(w) {
                self.resume_worker(w, now);
            }
        }
        self.drain_waiting(now);
    }

    /// Restarts whatever a worker had suspended, to the extent its link
    /// and the parameter shards are reachable again.
    fn resume_worker(&mut self, w: usize, now: Time) {
        if self.ctx.offline[w] {
            if self.workers[w].resume == Some(Resume::Resync)
                && !self.ctx.any_server_down()
                && !self.path_blocked(w)
            {
                self.workers[w].resume = None;
                self.begin_resync(w, now);
            }
            return;
        }
        if self.path_blocked(w) {
            return;
        }
        match self.workers[w].resume {
            Some(Resume::Push) if self.any_shard_up() => {
                self.workers[w].resume = None;
                // Re-plan against the latest accumulated gradients: in
                // pipeline mode compute kept running during the outage.
                let n = if self.pipeline {
                    self.workers[w].iter
                } else {
                    self.workers[w].iter + 1
                };
                self.begin_push(w, now, n);
            }
            Some(Resume::Resync) if !self.ctx.any_server_down() => {
                self.workers[w].resume = None;
                self.begin_resync(w, now);
            }
            _ => {}
        }
        for s in 0..self.n_shards {
            if !self.ctx.server_down[s] {
                self.resume_sub(w, s, now);
            }
        }
    }

    /// Restarts one shard's suspended leg. When every engaged leg was
    /// cut (single-shard runs, link blackouts), the whole cycle restarts
    /// through `begin_push`, re-planning against the latest gradients —
    /// the legacy single-server semantics. A partially cut cycle (other
    /// legs kept flowing or already finished) replans only this shard's
    /// rows at the cycle's pinned iteration.
    fn resume_sub(&mut self, w: usize, s: usize, now: Time) {
        let Some(kind) = self.workers[w].subs[s].resume else {
            return;
        };
        match kind {
            SubResume::Push => {
                let whole = self.workers[w]
                    .subs
                    .iter()
                    .all(|sp| !sp.engaged || sp.resume == Some(SubResume::Push));
                if whole {
                    for sub in &mut self.workers[w].subs {
                        sub.resume = None;
                    }
                    let n = if self.pipeline {
                        self.workers[w].iter
                    } else {
                        self.workers[w].iter + 1
                    };
                    self.begin_push(w, now, n);
                } else {
                    self.workers[w].subs[s].resume = None;
                    self.replan_sub(w, s);
                    let n = self.workers[w].comm_iter;
                    self.start_push_sub(w, s, now, n);
                }
            }
            SubResume::PullGate => {
                self.workers[w].subs[s].resume = None;
                let n = self.workers[w].comm_iter;
                self.set_comm_state_sub(w, now, DeviceState::Stall);
                self.waiting.push((w, s, n));
            }
        }
    }

    /// Rebuilds one shard's push plan at the cycle's pinned iteration
    /// (the other legs already carry it).
    fn replan_sub(&mut self, w: usize, s: usize) {
        let n = self.workers[w].comm_iter;
        let ws = &mut self.workers[w];
        let mut plan = std::mem::take(&mut ws.plan_scratch);
        ws.worker.plan_push_into(n, &mut plan);
        let map = self.server.map();
        let sub = &mut ws.subs[s];
        sub.push_plan.clear();
        sub.push_plan
            .extend(plan.iter().copied().filter(|&id| map.shard_of(id) == s));
        ws.plan_scratch = plan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Environment, ModelScale, WorkloadKind};

    fn cfg(threshold: u32) -> ExperimentConfig {
        ExperimentConfig {
            workload: WorkloadKind::Cruda,
            environment: Environment::Stable,
            strategy: Strategy::Rog { threshold },
            model_scale: ModelScale::Small,
            n_workers: 2,
            n_laptop_workers: 0,
            duration_secs: 120.0,
            eval_every: 5,
            seed: 42,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn rog_completes_iterations_and_checkpoints() {
        let m = run(&cfg(4));
        assert!(
            m.mean_iterations >= 10.0,
            "iterations {}",
            m.mean_iterations
        );
        assert!(!m.checkpoints.is_empty());
        assert!(m.composition.compute > 0.0);
        assert!(m.composition.communicate > 0.0);
    }

    #[test]
    fn rog_is_deterministic() {
        let a = run(&cfg(4));
        let b = run(&cfg(4));
        assert_eq!(a.mean_iterations, b.mean_iterations);
        assert_eq!(a.checkpoints, b.checkpoints);
    }

    #[test]
    fn rog_trains_without_collapse() {
        let m = run(&cfg(4));
        let first = m.checkpoints.first().expect("has checkpoints").metric;
        let last = m.checkpoints.last().expect("has checkpoints").metric;
        assert!(
            last > first - 3.0,
            "accuracy should not collapse: {first} -> {last}"
        );
    }

    #[test]
    fn micro_recording_captures_pushes() {
        let mut c = cfg(4);
        c.record_micro = true;
        c.duration_secs = 60.0;
        let m = run(&c);
        assert!(!m.micro.is_empty());
        for s in &m.micro {
            assert!(s.transmission_rate > 0.0 && s.transmission_rate <= 1.0);
            assert!(s.bandwidth_bps > 0.0);
        }
    }

    #[test]
    fn pipelined_rog_runs_and_outpaces_sequential() {
        let base = cfg(4);
        let seq = run(&base);
        let mut pipec = cfg(4);
        pipec.pipeline = true;
        let pipe = run(&pipec);
        assert!(pipe.name.contains("+pipe"));
        // Overlapping comm and compute must not reduce throughput; on a
        // stable channel it should clearly increase it.
        assert!(
            pipe.mean_iterations > seq.mean_iterations * 1.1,
            "pipeline {} vs sequential {}",
            pipe.mean_iterations,
            seq.mean_iterations
        );
        // Training still works.
        let first = pipe.checkpoints.first().expect("ckpt").metric;
        let last = pipe.checkpoints.last().expect("ckpt").metric;
        assert!(last > first - 3.0, "accuracy collapsed: {first} -> {last}");
    }

    #[test]
    fn pipelined_rog_is_deterministic() {
        let mut c = cfg(4);
        c.pipeline = true;
        let a = run(&c);
        let b = run(&c);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.mean_iterations, b.mean_iterations);
    }

    #[test]
    fn auto_threshold_runs_and_adapts() {
        let mut c = cfg(4);
        c.auto_threshold = true;
        c.environment = Environment::Outdoor;
        c.duration_secs = 240.0;
        let m = run(&c);
        assert!(m.name.contains("+auto"));
        assert!(m.mean_iterations > 5.0);
        // Determinism is preserved with the controller on.
        let m2 = run(&c);
        assert_eq!(m.checkpoints, m2.checkpoints);
    }

    #[test]
    fn unstable_channel_still_converges_on_iterations() {
        let mut c = cfg(4);
        c.environment = Environment::Outdoor;
        c.duration_secs = 90.0;
        let m = run(&c);
        assert!(m.mean_iterations >= 5.0, "iterations {}", m.mean_iterations);
    }

    #[test]
    fn departed_worker_does_not_block_the_survivor() {
        use rog_fault::FaultPlan;
        let fault_free = run(&cfg(4));
        let mut c = cfg(4);
        c.fault_plan = Some(FaultPlan::new().worker_offline(1, 30.0, 90.0));
        let m = run(&c);
        assert!(m.name.contains("+faults"));
        // The offline window lands in the timeline (worker 1, 60 s).
        assert!(
            (m.offline_secs - 60.0).abs() < 5.0,
            "offline {}",
            m.offline_secs
        );
        // Dynamic membership: the survivor keeps iterating instead of
        // pinning at the departed worker's last push, so the cluster
        // loses far less than the naive half of the outage.
        assert!(
            m.mean_iterations > fault_free.mean_iterations * 0.6,
            "churn {} vs fault-free {}",
            m.mean_iterations,
            fault_free.mean_iterations
        );
        // Bounded stall: the survivor must not sit at the gate for the
        // outage (that is what a BSP-style barrier would do).
        assert!(
            m.stall_secs < 30.0,
            "survivor stalled {} s during a 60 s outage",
            m.stall_secs
        );
    }

    #[test]
    fn blackout_suspends_and_resumes_the_cycle() {
        use rog_fault::FaultPlan;
        let mut c = cfg(4);
        c.fault_plan = Some(FaultPlan::new().link_blackout(1, 20.0, 40.0));
        let m = run(&c);
        assert!(m.mean_iterations > 10.0, "iters {}", m.mean_iterations);
        // The interrupted transfer's bytes are wasted and retransmitted.
        assert!(m.wasted_bytes > 0.0);
        let m2 = run(&c);
        assert_eq!(m.checkpoints, m2.checkpoints, "faulty runs replay");
        assert_eq!(m.mean_iterations, m2.mean_iterations);
    }

    #[test]
    fn server_restart_parks_everyone_then_recovers() {
        use rog_fault::FaultPlan;
        let mut c = cfg(4);
        c.fault_plan = Some(FaultPlan::new().server_restart(40.0, 55.0));
        let m = run(&c);
        assert!(m.mean_iterations > 10.0, "iters {}", m.mean_iterations);
        let m2 = run(&c);
        assert_eq!(m.checkpoints, m2.checkpoints);
    }

    #[test]
    fn seeded_churn_is_deterministic_and_trains() {
        let mut c = cfg(4);
        c.duration_secs = 240.0;
        c.fault_seed = Some(3);
        let a = run(&c);
        let b = run(&c);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.total_energy_j, b.total_energy_j);
        assert!(a.mean_iterations > 5.0, "iters {}", a.mean_iterations);
        let first = a.checkpoints.first().expect("ckpt").metric;
        let last = a.checkpoints.last().expect("ckpt").metric;
        assert!(last > first - 3.0, "accuracy collapsed: {first} -> {last}");
    }

    #[test]
    fn pipelined_rog_survives_churn_deterministically() {
        use rog_fault::FaultPlan;
        let mut c = cfg(4);
        c.pipeline = true;
        c.fault_plan = Some(
            FaultPlan::new()
                .worker_offline(1, 25.0, 55.0)
                .link_blackout(0, 70.0, 80.0),
        );
        let a = run(&c);
        let b = run(&c);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert!(a.mean_iterations > 5.0, "iters {}", a.mean_iterations);
    }

    #[test]
    fn empty_fault_plan_matches_fault_free_run_exactly() {
        use rog_fault::FaultPlan;
        let base = run(&cfg(4));
        let mut c = cfg(4);
        c.fault_plan = Some(FaultPlan::new());
        let empty = run(&c);
        assert_eq!(base.name, empty.name);
        assert_eq!(base.checkpoints, empty.checkpoints);
        assert_eq!(base.mean_iterations, empty.mean_iterations);
        assert_eq!(base.total_energy_j, empty.total_energy_j);
        assert_eq!(base.useful_bytes, empty.useful_bytes);
        assert_eq!(base.wasted_bytes, empty.wasted_bytes);
    }

    #[test]
    fn explicit_single_shard_matches_default_exactly() {
        let base = run_traced(&cfg(4));
        let mut c = cfg(4);
        c.n_shards = 1;
        let one = run_traced(&c);
        assert_eq!(base.0.name, one.0.name);
        assert_eq!(base.0.checkpoints, one.0.checkpoints);
        assert_eq!(base.0.total_energy_j, one.0.total_energy_j);
        assert_eq!(base.0.useful_bytes, one.0.useful_bytes);
        assert_eq!(base.1.to_jsonl(), one.1.to_jsonl());
    }

    #[test]
    fn sharded_rog_is_deterministic_and_trains() {
        let mut c = cfg(4);
        c.n_shards = 2;
        let a = run(&c);
        assert!(a.name.contains("+shard2"), "name {}", a.name);
        assert!(a.mean_iterations > 5.0, "iters {}", a.mean_iterations);
        let b = run(&c);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.mean_iterations, b.mean_iterations);
    }

    #[test]
    fn shard_outage_at_two_shards_still_trains_deterministically() {
        use rog_fault::FaultPlan;
        let mut c = cfg(4);
        c.n_shards = 2;
        c.fault_plan = Some(FaultPlan::new().server_restart_on(1, 40.0, 55.0));
        let a = run(&c);
        assert!(a.mean_iterations > 10.0, "iters {}", a.mean_iterations);
        let b = run(&c);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.total_energy_j, b.total_energy_j);
    }

    #[test]
    fn pipelined_sharded_rog_is_deterministic() {
        let mut c = cfg(4);
        c.pipeline = true;
        c.n_shards = 4;
        let a = run(&c);
        assert!(a.mean_iterations > 5.0, "iters {}", a.mean_iterations);
        let b = run(&c);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.mean_iterations, b.mean_iterations);
    }
}
