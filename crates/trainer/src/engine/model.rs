//! Model-granularity engine: BSP, SSP and FLOWN.
//!
//! Per iteration each worker computes gradients, pushes the *whole*
//! compressed model to the parameter server, and asks to pull the
//! averaged gradients. The pull is granted only when the SSP gate allows
//! the worker to proceed (BSP: threshold 0 → lockstep); otherwise the
//! worker stalls. All pushes and pulls contend for the shared wireless
//! channel, so one straggling transmission stalls everyone at the gate —
//! the straggler effect ROG eliminates.

use std::collections::BTreeMap;

use rog_compress::ErrorFeedback;
use rog_core::{RowId, RowPartition};
use rog_models::{GradSet, Mlp};
use rog_net::{FlowEvent, FlowId, FlowOutcome, FlowSpec};
use rog_sim::{DeviceState, Time};
use rog_sync::{gate, FixedThreshold, FlownPolicy, ThresholdPolicy, VersionVector, WorkerNetStats};
use rog_tensor::{ops, Matrix};

use crate::compute::{self, PendingDraw};
use crate::config::{ExperimentConfig, Strategy};
use crate::engine::common::{EngineCtx, Ev};
use crate::metrics::RunMetrics;

struct WState {
    model: Mlp,
    /// Completed iterations (currently computing `iter + 1`).
    iter: u64,
    grads: Option<GradSet>,
    /// Whole-model push compression residuals.
    ef: ErrorFeedback,
    vel: Vec<Matrix>,
    stats: WorkerNetStats,
    push_started: Time,
    done: bool,
}

struct Server {
    /// Per-worker pending averaged gradients.
    pending: Vec<GradSet>,
    versions: VersionVector,
    /// Per-destination pull compression residuals.
    efs: Vec<ErrorFeedback>,
    /// Workers whose pull awaits the gate; stores their pushed iter.
    waiting: Vec<usize>,
    thresholds: Vec<u32>,
}

enum FlowCtx {
    Push(usize),
    Pull(usize, GradSet),
}

struct ModelEngine {
    ctx: EngineCtx,
    workers: Vec<WState>,
    /// Prefetched gradient draws, one slot per worker.
    pending: Vec<Option<PendingDraw>>,
    server: Server,
    policy: Box<dyn ThresholdPolicy>,
    flows: BTreeMap<FlowId, FlowCtx>,
    partition: RowPartition,
    model_wire_bytes: u64,
}

/// Runs one model-granularity experiment.
pub fn run(cfg: &ExperimentConfig) -> RunMetrics {
    let ctx = EngineCtx::new(cfg);
    let n = cfg.n_workers;
    let init = ctx.cluster.init_model.clone();
    let widths = init.row_widths();
    let partition = RowPartition::of_params(init.params());
    let model_wire_bytes = ctx.cluster.scaled_model_bytes(
        widths
            .iter()
            .map(|&w| rog_compress::compressed_row_payload_bytes(w)),
    );
    let zero: GradSet = init
        .params()
        .iter()
        .map(|m| Matrix::zeros(m.rows(), m.cols()))
        .collect();
    let workers: Vec<WState> = (0..n)
        .map(|_| WState {
            model: init.clone(),
            iter: 0,
            grads: None,
            ef: ErrorFeedback::new(&widths),
            vel: zero.clone(),
            stats: WorkerNetStats::default(),
            push_started: 0.0,
            done: false,
        })
        .collect();
    let server = Server {
        pending: vec![zero; n],
        versions: VersionVector::new(n),
        efs: (0..n).map(|_| ErrorFeedback::new(&widths)).collect(),
        waiting: Vec::new(),
        thresholds: vec![0; n],
    };
    let policy: Box<dyn ThresholdPolicy> = match cfg.strategy {
        Strategy::Bsp => Box::new(FixedThreshold::bsp()),
        Strategy::Ssp { threshold } => Box::new(FixedThreshold::ssp(threshold)),
        Strategy::Asp => Box::new(FixedThreshold::asp()),
        Strategy::Flown {
            min_threshold,
            max_threshold,
        } => Box::new(FlownPolicy::new(min_threshold, max_threshold)),
        Strategy::Rog { .. } => unreachable!("row strategy runs in the row engine"),
    };
    let mut engine = ModelEngine {
        ctx,
        workers,
        pending: (0..n).map(|_| None).collect(),
        server,
        policy,
        flows: BTreeMap::new(),
        partition,
        model_wire_bytes,
    };
    engine.refresh_thresholds();
    engine.event_loop();
    let models: Vec<&Mlp> = engine.workers.iter().map(|w| &w.model).collect();
    engine.ctx.finish(&models)
}

impl ModelEngine {
    fn event_loop(&mut self) {
        let duration = self.ctx.duration();
        for w in 0..self.workers.len() {
            self.ctx.start_compute(w, 0.0);
        }
        loop {
            let horizon = self
                .ctx
                .queue
                .peek_time()
                .unwrap_or(f64::INFINITY)
                .min(duration);
            let evs = self.ctx.cluster.channel.advance_until(horizon);
            let now = self.ctx.cluster.channel.now();
            if !evs.is_empty() {
                for e in evs {
                    self.on_flow(e);
                }
                continue;
            }
            if now >= duration - 1e-9 {
                break;
            }
            // Pending ComputeDone draws are independent (each worker's
            // model is frozen until its event fires); batch them on the
            // compute plane before delivering events.
            compute::prefetch_draws(&mut self.ctx, &mut self.pending, |w| &self.workers[w].model);
            match self.ctx.queue.pop() {
                Some((t, Ev::ComputeDone(w))) => self.on_compute_done(w, t),
                None => {
                    // No timers and no flow finished before the horizon:
                    // if flows are in flight the next loop advances them;
                    // otherwise nothing can ever happen again.
                    if self.ctx.cluster.channel.active_flows() == 0 {
                        break;
                    }
                }
            }
        }
    }

    fn refresh_thresholds(&mut self) {
        let stats: Vec<WorkerNetStats> = self.workers.iter().map(|w| w.stats.clone()).collect();
        self.server.thresholds = self.policy.thresholds(&stats);
    }

    fn on_compute_done(&mut self, w: usize, now: Time) {
        let (grads, mean_abs) = compute::take_draw(
            &mut self.ctx,
            &mut self.pending[w],
            w,
            &self.workers[w].model,
        );
        let ws = &mut self.workers[w];
        ws.grads = Some(grads);
        ws.stats.grad_mean_abs = f64::from(mean_abs);
        ws.push_started = now;
        self.ctx.set_state(w, now, DeviceState::Communicate);
        let id = self
            .ctx
            .cluster
            .channel
            .start_flow(now, FlowSpec::new(w, vec![self.model_wire_bytes]));
        self.flows.insert(id, FlowCtx::Push(w));
    }

    fn on_flow(&mut self, ev: FlowEvent) {
        let ctx = self.flows.remove(&ev.id).expect("unknown flow");
        debug_assert!(
            matches!(ev.outcome, FlowOutcome::Completed),
            "model flows have no deadline"
        );
        match ctx {
            FlowCtx::Push(w) => self.on_push_done(w, ev.at),
            FlowCtx::Pull(w, payload) => self.on_pull_done(w, payload, ev.at),
        }
    }

    fn on_push_done(&mut self, w: usize, now: Time) {
        let n_workers = self.workers.len();
        let pushed_iter = self.workers[w].iter + 1;
        // Quantize the pushed gradients (error feedback on the worker).
        let grads = self.workers[w]
            .grads
            .take()
            .expect("gradients were computed");
        let quantized = quantize_set(&self.partition, &mut self.workers[w].ef, &grads);
        self.ctx.recycle_grads(grads);
        // Average into every worker's pending copy.
        let inv = 1.0 / n_workers as f32;
        for pend in &mut self.server.pending {
            for (p, q) in pend.iter_mut().zip(&quantized) {
                p.add_scaled(q, inv).expect("shapes match");
            }
        }
        self.server.versions.record_push(w, pushed_iter);
        // Bandwidth estimate for FLOWN.
        let dur = (now - self.workers[w].push_started).max(1e-6);
        self.workers[w].stats.last_push_secs = dur;
        self.workers[w].stats.est_bandwidth_bps = self.model_wire_bytes as f64 * 8.0 / dur;
        self.refresh_thresholds();
        // This worker now waits for its pull.
        self.server.waiting.push(w);
        self.ctx.set_state(w, now, DeviceState::Stall);
        self.drain_waiting(now);
    }

    fn drain_waiting(&mut self, now: Time) {
        let mut still_waiting = Vec::new();
        let waiting = std::mem::take(&mut self.server.waiting);
        for w in waiting {
            let t = self.server.thresholds[w];
            if gate::may_proceed(&self.server.versions, w, t) {
                self.grant_pull(w, now);
            } else {
                still_waiting.push(w);
            }
        }
        self.server.waiting = still_waiting;
    }

    fn grant_pull(&mut self, w: usize, now: Time) {
        // Quantize and drain this worker's pending copy.
        let pending = std::mem::replace(
            &mut self.server.pending[w],
            self.workers[w]
                .model
                .params()
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect(),
        );
        let payload = quantize_set(&self.partition, &mut self.server.efs[w], &pending);
        self.ctx.set_state(w, now, DeviceState::Communicate);
        let id = self
            .ctx
            .cluster
            .channel
            .start_flow(now, FlowSpec::new(w, vec![self.model_wire_bytes]));
        self.flows.insert(id, FlowCtx::Pull(w, payload));
    }

    fn on_pull_done(&mut self, w: usize, payload: GradSet, now: Time) {
        let lr = self.ctx.cluster.lr;
        let momentum = self.ctx.cfg.momentum;
        {
            let ws = &mut self.workers[w];
            for (mi, g) in payload.iter().enumerate() {
                for r in 0..g.rows() {
                    let wrow = ws.model.params_mut()[mi].row_mut(r);
                    if momentum > 0.0 {
                        ops::sgd_momentum_row(wrow, ws.vel[mi].row_mut(r), g.row(r), lr, momentum);
                    } else {
                        ops::sgd_row(wrow, g.row(r), lr);
                    }
                }
            }
            ws.iter += 1;
        }
        self.ctx.collector.record_iteration(w);
        let iter = self.workers[w].iter;
        self.ctx.maybe_eval(w, iter, now, &self.workers[w].model);
        if now < self.ctx.duration() {
            self.ctx.start_compute(w, now);
        } else {
            self.workers[w].done = true;
            self.ctx.set_state(w, now, DeviceState::Idle);
        }
    }
}

/// Quantizes a gradient set row-by-row with error feedback, returning the
/// values the receiver reconstructs.
fn quantize_set(partition: &RowPartition, ef: &mut ErrorFeedback, set: &GradSet) -> GradSet {
    let mut out: GradSet = set
        .iter()
        .map(|m| Matrix::zeros(m.rows(), m.cols()))
        .collect();
    for i in 0..partition.n_rows() {
        let id = RowId(i);
        let r = partition.locate(id);
        let restored = ef.compress(i, set[r.matrix].row(r.row)).decompress();
        out[r.matrix].row_mut(r.row).copy_from_slice(&restored);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Environment, ModelScale, WorkloadKind};

    fn cfg(strategy: Strategy) -> ExperimentConfig {
        ExperimentConfig {
            workload: WorkloadKind::Cruda,
            environment: Environment::Stable,
            strategy,
            model_scale: ModelScale::Small,
            n_workers: 2,
            n_laptop_workers: 0,
            duration_secs: 120.0,
            eval_every: 5,
            seed: 42,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn bsp_completes_iterations_and_checkpoints() {
        let m = run(&cfg(Strategy::Bsp));
        assert!(
            m.mean_iterations >= 10.0,
            "iterations {}",
            m.mean_iterations
        );
        assert!(!m.checkpoints.is_empty());
        assert!(m.composition.compute > 0.0);
        assert!(m.composition.communicate > 0.0);
        assert!(m.total_energy_j > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&cfg(Strategy::Ssp { threshold: 4 }));
        let b = run(&cfg(Strategy::Ssp { threshold: 4 }));
        assert_eq!(a.mean_iterations, b.mean_iterations);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.total_energy_j, b.total_energy_j);
    }

    #[test]
    fn training_improves_the_metric() {
        let m = run(&cfg(Strategy::Bsp));
        let first = m.checkpoints.first().expect("has checkpoints").metric;
        let last = m.checkpoints.last().expect("has checkpoints").metric;
        assert!(
            last > first - 3.0,
            "accuracy should not collapse: {first} -> {last}"
        );
    }

    #[test]
    fn flown_runs_to_completion() {
        let m = run(&cfg(Strategy::Flown {
            min_threshold: 2,
            max_threshold: 8,
        }));
        assert!(m.mean_iterations > 5.0);
    }

    #[test]
    fn bsp_workers_stay_in_lockstep() {
        // Under BSP both workers complete the same number of iterations
        // (±1 for the cut-off at the time budget).
        let m = run(&cfg(Strategy::Bsp));
        // mean_iterations is the average; with lockstep the per-worker
        // counts differ by at most 1, so the fractional part is 0 or .5.
        let frac = m.mean_iterations.fract();
        assert!(
            frac < 0.51,
            "lockstep violated: mean iterations {}",
            m.mean_iterations
        );
    }
}
