//! Model-granularity engine: BSP, SSP, ASP, FLOWN, DSSP and ABS.
//!
//! Per iteration each worker computes gradients, pushes the *whole*
//! compressed model to the parameter server, and asks to pull the
//! averaged gradients. The pull is granted only when the SSP gate allows
//! the worker to proceed (BSP: threshold 0 → lockstep); otherwise the
//! worker stalls. All pushes and pulls contend for the shared wireless
//! channel, so one straggling transmission stalls everyone at the gate —
//! the straggler effect ROG eliminates.

use std::collections::BTreeMap;

use rog_compress::ErrorFeedback;
use rog_core::{RowId, RowPartition};
use rog_fault::FaultEvent;
use rog_models::{GradSet, Mlp};
use rog_net::{
    BackoffPolicy, FlowEvent, FlowId, FlowOutcome, FlowSpec, ReliableProgress, ReliableTransfer,
};
use rog_obs::{obs, EventKind};
use rog_sim::{DeviceState, Time};
use rog_sync::{
    gate, AbsPolicy, DsspPolicy, FixedThreshold, FlownPolicy, ThresholdPolicy, VersionVector,
    WorkerNetStats,
};
use rog_tensor::{ops, Matrix};

use crate::compute::{self, PendingDraw};
use crate::config::{ExperimentConfig, Strategy};
use crate::engine::common::{EngineCtx, Ev};
use crate::engine::row::segment_chunks;
use crate::metrics::RunMetrics;

struct WState {
    model: Mlp,
    /// Completed iterations (currently computing `iter + 1`).
    iter: u64,
    grads: Option<GradSet>,
    /// Whole-model push compression residuals.
    ef: ErrorFeedback,
    vel: Vec<Matrix>,
    stats: WorkerNetStats,
    push_started: Time,
    /// When the worker's current round started (previous push-done),
    /// feeding the DSSP iteration-rate estimate.
    round_started: Time,
    /// When the worker joined the gate wait (journal only).
    gate_entered: Time,
    done: bool,
    /// A gradient computation is running (its timer is queued).
    computing: bool,
    /// Phase to restart once connectivity returns after a fault.
    resume: Option<MResume>,
}

/// What an interrupted worker restarts when connectivity returns.
/// Model-granularity strategies keep *static* membership — a departed
/// worker's version pins the SSP/BSP gate until it rejoins, which is
/// exactly the fragility ROG's dynamic membership removes.
enum MResume {
    /// Retransmit the whole-model push (`grads` are still held).
    Push,
    /// Retransmit the pull; the drained averaged gradients ride along.
    Pull(GradSet),
    /// Restart the rejoin resync transfer.
    Resync,
}

struct Server {
    /// Per-worker pending averaged gradients.
    pending: Vec<GradSet>,
    versions: VersionVector,
    /// Per-destination pull compression residuals.
    efs: Vec<ErrorFeedback>,
    /// Workers whose pull awaits the gate; stores their pushed iter.
    waiting: Vec<usize>,
    thresholds: Vec<u32>,
}

enum FlowCtx {
    Push(usize),
    Pull(usize, GradSet),
    /// Full-model transfer bringing a rejoining worker back in sync.
    Resync(usize),
}

impl FlowCtx {
    fn worker(&self) -> usize {
        match self {
            FlowCtx::Push(w) | FlowCtx::Pull(w, _) | FlowCtx::Resync(w) => *w,
        }
    }
}

struct ModelEngine {
    ctx: EngineCtx,
    workers: Vec<WState>,
    /// Prefetched gradient draws, one slot per worker.
    pending: Vec<Option<PendingDraw>>,
    server: Server,
    policy: Box<dyn ThresholdPolicy>,
    /// Whether the policy adapts at runtime (DSSP/ABS): threshold
    /// changes are then journaled as `threshold_adapt` events so the
    /// instantaneous bound is observable and replayable. The journaled
    /// value never narrows below a granted-but-unpushed iteration's
    /// lead (see [`ModelEngine::refresh_thresholds`]).
    adaptive: bool,
    /// Last journaled per-worker threshold; `None` before the first
    /// `threshold_adapt` event. Unused when `adaptive` is false.
    journaled_thr: Vec<Option<u32>>,
    flows: BTreeMap<FlowId, FlowCtx>,
    partition: RowPartition,
    model_wire_bytes: u64,
    /// Outstanding `ComputeDone` timers of departed workers, swallowed
    /// on arrival.
    stale_timers: Vec<u32>,
    /// Reliable-class retransmit state per worker (loss model only).
    /// Every model-granularity transfer is reliable: the baselines have
    /// no row granularity to degrade to, so a lost chunk must be resent
    /// before the worker can move — which is exactly why they stall
    /// under loss where ROG keeps training.
    retx: Vec<Option<ReliableTransfer>>,
    /// Flow context parked while its retransmit backoff runs.
    retry_ctx: Vec<Option<FlowCtx>>,
    /// Whether a `NetRetry` timer is queued per worker.
    retry_armed: Vec<bool>,
    /// Queued `NetRetry` timers voided by a fault, swallowed on arrival.
    stale_retries: Vec<u32>,
}

/// Runs one model-granularity experiment.
pub fn run(cfg: &ExperimentConfig) -> RunMetrics {
    run_traced(cfg).0
}

/// Runs one model-granularity experiment, returning the event journal
/// alongside the metrics.
pub fn run_traced(cfg: &ExperimentConfig) -> (RunMetrics, rog_obs::Journal) {
    let ctx = EngineCtx::new(cfg);
    let n = cfg.n_workers;
    let init = ctx.cluster.init_model.clone();
    let widths = init.row_widths();
    let partition = RowPartition::of_params(init.params());
    // Model-granularity baselines always ship the dense one-bit model
    // (the codec ladder is a row-granular feature).
    let model_wire_bytes = ctx.cluster.scaled_model_bytes(
        widths
            .iter()
            .map(|&w| rog_compress::RowCodec::payload_bytes(&rog_compress::OneBitCodec, w)),
    );
    let zero: GradSet = init
        .params()
        .iter()
        .map(|m| Matrix::zeros(m.rows(), m.cols()))
        .collect();
    let workers: Vec<WState> = (0..n)
        .map(|_| WState {
            model: init.clone(),
            iter: 0,
            grads: None,
            ef: ErrorFeedback::new(&widths),
            vel: zero.clone(),
            stats: WorkerNetStats::default(),
            push_started: 0.0,
            round_started: 0.0,
            gate_entered: 0.0,
            done: false,
            computing: false,
            resume: None,
        })
        .collect();
    let server = Server {
        pending: vec![zero; n],
        versions: VersionVector::new(n),
        efs: (0..n).map(|_| ErrorFeedback::new(&widths)).collect(),
        waiting: Vec::new(),
        thresholds: vec![0; n],
    };
    let (policy, adaptive): (Box<dyn ThresholdPolicy>, bool) = match cfg.strategy {
        Strategy::Bsp => (Box::new(FixedThreshold::bsp()), false),
        Strategy::Ssp { threshold } => (Box::new(FixedThreshold::ssp(threshold)), false),
        Strategy::Asp => (Box::new(FixedThreshold::asp()), false),
        Strategy::Flown {
            min_threshold,
            max_threshold,
        } => (
            Box::new(FlownPolicy::new(min_threshold, max_threshold)),
            false,
        ),
        Strategy::Dssp {
            min_threshold,
            max_threshold,
        } => (
            Box::new(DsspPolicy::new(min_threshold, max_threshold)),
            true,
        ),
        Strategy::Abs {
            min_threshold,
            max_threshold,
        } => (Box::new(AbsPolicy::new(min_threshold, max_threshold)), true),
        Strategy::Rog { .. } | Strategy::RogAdaptive { .. } => {
            unreachable!("row strategies run in the row engine")
        }
    };
    let mut engine = ModelEngine {
        ctx,
        workers,
        pending: (0..n).map(|_| None).collect(),
        server,
        policy,
        adaptive,
        journaled_thr: vec![None; n],
        flows: BTreeMap::new(),
        partition,
        model_wire_bytes,
        stale_timers: vec![0; n],
        retx: (0..n).map(|_| None).collect(),
        retry_ctx: (0..n).map(|_| None).collect(),
        retry_armed: vec![false; n],
        stale_retries: vec![0; n],
    };
    engine.refresh_thresholds(0.0);
    engine.event_loop();
    let models: Vec<&Mlp> = engine.workers.iter().map(|w| &w.model).collect();
    engine.ctx.finish_traced(&models)
}

impl ModelEngine {
    fn start_compute(&mut self, w: usize, now: Time) {
        self.workers[w].computing = true;
        obs!(
            self.ctx.journal,
            now,
            EventKind::IterBegin {
                w: w as u32,
                iter: self.workers[w].iter + 1,
            }
        );
        self.ctx.start_compute(w, now);
    }

    fn event_loop(&mut self) {
        let duration = self.ctx.duration();
        for w in 0..self.workers.len() {
            self.start_compute(w, 0.0);
        }
        loop {
            let horizon = self
                .ctx
                .queue
                .peek_time()
                .unwrap_or(f64::INFINITY)
                .min(self.ctx.next_fault_time().unwrap_or(f64::INFINITY))
                .min(duration);
            let evs = self.ctx.cluster.transport.advance_until(horizon);
            let now = self.ctx.cluster.transport.now();
            if !evs.is_empty() {
                for e in evs {
                    self.on_flow(e);
                }
                continue;
            }
            if now >= duration - 1e-9 {
                break;
            }
            // Injected faults fire before timers at the same instant
            // (flow completions were already delivered above).
            let faults = self.ctx.pop_due_faults(now);
            if !faults.is_empty() {
                for f in faults {
                    self.on_fault(f, now);
                }
                continue;
            }
            // Pending ComputeDone draws are independent (each worker's
            // model is frozen until its event fires); batch them on the
            // compute plane before delivering events.
            compute::prefetch_draws(&mut self.ctx, &mut self.pending, |w| &self.workers[w].model);
            match self.ctx.queue.pop() {
                Some((t, Ev::ComputeDone(w))) => self.on_compute_done(w, t),
                Some((t, Ev::NetRetry(w))) => self.on_net_retry(w, t),
                None => {
                    // No timers and no flow finished before the horizon:
                    // if flows are in flight the next loop advances them;
                    // otherwise nothing can ever happen again.
                    if self.ctx.cluster.transport.active_flows() == 0
                        && self.ctx.next_fault_time().is_none()
                    {
                        break;
                    }
                }
            }
        }
    }

    fn refresh_thresholds(&mut self, now: Time) {
        let stats: Vec<WorkerNetStats> = self.workers.iter().map(|w| w.stats.clone()).collect();
        self.server.thresholds = self.policy.thresholds(&stats);
        if !self.adaptive {
            return;
        }
        // Journal the instantaneous per-worker bound. A worker that was
        // already granted its pull (not waiting at the gate) may carry
        // a lead admitted under the wider bound in force at grant time,
        // so the journaled bound never narrows below that lead — every
        // `gate_enter` then satisfies `lead <= bound + 1` against the
        // bound in force at its own timestamp. Gating itself always
        // uses the raw policy thresholds, so a waiting worker is never
        // released early by its own lead.
        for w in 0..self.workers.len() {
            let raw = self.server.thresholds[w];
            let journaled = if self.server.waiting.contains(&w) {
                raw
            } else {
                let lead = u32::try_from(self.server.versions.lead(w)).unwrap_or(u32::MAX);
                raw.max(lead)
            };
            if self.journaled_thr[w] != Some(journaled) {
                self.journaled_thr[w] = Some(journaled);
                obs!(
                    self.ctx.journal,
                    now,
                    EventKind::ThresholdAdapt {
                        w: w as u32,
                        threshold: journaled,
                    }
                );
            }
        }
    }

    fn on_compute_done(&mut self, w: usize, now: Time) {
        if self.stale_timers[w] > 0 {
            // The worker that armed this timer departed; void the draw.
            self.stale_timers[w] -= 1;
            self.discard_pending(w);
            return;
        }
        self.workers[w].computing = false;
        let (grads, mean_abs) = compute::take_draw(
            &mut self.ctx,
            &mut self.pending[w],
            w,
            &self.workers[w].model,
        );
        let ws = &mut self.workers[w];
        ws.grads = Some(grads);
        ws.stats.grad_mean_abs = f64::from(mean_abs);
        self.start_push(w, now);
    }

    /// Starts (or, after a fault, parks) the whole-model push transfer.
    fn start_push(&mut self, w: usize, now: Time) {
        if self.ctx.any_server_down() || self.ctx.link_down[w] {
            self.workers[w].resume = Some(MResume::Push);
            self.ctx.set_state(w, now, DeviceState::Stall);
            return;
        }
        self.workers[w].push_started = now;
        // Model granularity pushes the whole model: every row is
        // mandatory, there is no MTA budget.
        let rows = self.partition.n_rows() as u32;
        obs!(
            self.ctx.journal,
            now,
            EventKind::PushStart {
                w: w as u32,
                iter: self.workers[w].iter + 1,
                rows,
                mand: rows,
                mta: 0,
                budget: -1.0,
            }
        );
        self.ctx.set_state(w, now, DeviceState::Communicate);
        let chunks = self.transport_chunks(w);
        let id = self
            .ctx
            .cluster
            .transport
            .start_flow(now, FlowSpec::new(w, chunks));
        self.flows.insert(id, FlowCtx::Push(w));
    }

    /// Chunks a whole-model transfer for the reliable transport. With a
    /// loss model installed the payload is segmented and tracked by a
    /// fresh [`ReliableTransfer`]; without one, the pre-loss
    /// single-chunk flow is byte-identical.
    fn transport_chunks(&mut self, w: usize) -> Vec<u64> {
        if self.ctx.cluster.transport.loss_enabled() {
            let chunks = segment_chunks(self.model_wire_bytes);
            self.void_retry(w);
            self.retx[w] = Some(ReliableTransfer::new(
                chunks.clone(),
                BackoffPolicy::default(),
            ));
            chunks
        } else {
            vec![self.model_wire_bytes]
        }
    }

    /// Arms the backoff timer for a worker's reliable retransmit.
    fn schedule_retry(&mut self, w: usize, at: Time) {
        self.ctx.queue.push(at, Ev::NetRetry(w));
        self.retry_armed[w] = true;
    }

    /// Voids a queued backoff timer (it is swallowed on arrival).
    fn void_retry(&mut self, w: usize) {
        if self.retry_armed[w] {
            self.stale_retries[w] += 1;
            self.retry_armed[w] = false;
        }
    }

    /// Abandons a worker's reliable transfer (fault site), returning the
    /// parked flow context if its backoff was running.
    fn clear_retx(&mut self, w: usize) -> Option<FlowCtx> {
        self.void_retry(w);
        self.retx[w] = None;
        self.retry_ctx[w].take()
    }

    /// A reliable-class backoff expired: resend the outstanding chunks.
    fn on_net_retry(&mut self, w: usize, now: Time) {
        if self.stale_retries[w] > 0 {
            self.stale_retries[w] -= 1;
            return;
        }
        self.retry_armed[w] = false;
        let Some(ctx) = self.retry_ctx[w].take() else {
            return;
        };
        let chunks = self.retx[w]
            .as_ref()
            .expect("parked retry implies transfer state")
            .pending_chunks();
        obs!(
            self.ctx.journal,
            now,
            EventKind::Retransmit {
                w: w as u32,
                rows: chunks.len() as u32,
                class: "reliable",
            }
        );
        self.ctx.set_state(w, now, DeviceState::Communicate);
        let id = self
            .ctx
            .cluster
            .transport
            .start_flow(now, FlowSpec::new(w, chunks));
        self.flows.insert(id, ctx);
    }

    fn on_flow(&mut self, ev: FlowEvent) {
        let ctx = self.flows.remove(&ev.id).expect("unknown flow");
        debug_assert!(
            matches!(ev.outcome, FlowOutcome::Completed),
            "model flows have no deadline and cancels are reaped early"
        );
        let w = ctx.worker();
        let report = self.ctx.cluster.transport.take_report(ev.id);
        if let Some(retx) = self.retx[w].as_mut() {
            let transmitted = retx.pending_count();
            let fates = report.as_ref().map(|r| r.fates.as_slice());
            match retx.on_round(fates, transmitted) {
                ReliableProgress::Done => self.retx[w] = None,
                ReliableProgress::Retry { delay } => {
                    // Chunks died in flight: the whole transfer blocks on
                    // the backed-off retransmit (reliable-only transport
                    // has nothing to degrade to), stalling this worker —
                    // and through the gate, eventually everyone.
                    if let Some(r) = report.as_ref() {
                        obs!(
                            self.ctx.journal,
                            ev.at,
                            EventKind::Loss {
                                w: w as u32,
                                lost: r.lost_chunks() as u32,
                                corrupt: r.corrupt_chunks() as u32,
                                chunks: r.fates.len() as u32,
                            }
                        );
                    }
                    obs!(
                        self.ctx.journal,
                        ev.at,
                        EventKind::Backoff {
                            w: w as u32,
                            until: ev.at + delay,
                        }
                    );
                    self.retry_ctx[w] = Some(ctx);
                    self.ctx.set_state(w, ev.at, DeviceState::Stall);
                    self.schedule_retry(w, ev.at + delay);
                    return;
                }
            }
        }
        match ctx {
            FlowCtx::Push(w) => self.on_push_done(w, ev.at),
            FlowCtx::Pull(w, payload) => self.on_pull_done(w, payload, ev.at),
            FlowCtx::Resync(w) => self.finish_resync(w, ev.at),
        }
    }

    fn on_push_done(&mut self, w: usize, now: Time) {
        let n_workers = self.workers.len();
        let pushed_iter = self.workers[w].iter + 1;
        // Quantize the pushed gradients (error feedback on the worker).
        let grads = self.workers[w]
            .grads
            .take()
            .expect("gradients were computed");
        let quantized = quantize_set(&self.partition, &mut self.workers[w].ef, &grads);
        self.ctx.recycle_grads(grads);
        // Average into every worker's pending copy.
        let inv = 1.0 / n_workers as f32;
        for pend in &mut self.server.pending {
            for (p, q) in pend.iter_mut().zip(&quantized) {
                p.add_scaled(q, inv).expect("shapes match");
            }
        }
        self.server.versions.record_push(w, pushed_iter);
        // Bandwidth estimate for FLOWN; round accounting for DSSP/ABS.
        let dur = (now - self.workers[w].push_started).max(1e-6);
        let ws = &mut self.workers[w];
        ws.stats.last_push_secs = dur;
        ws.stats.est_bandwidth_bps = self.model_wire_bytes as f64 * 8.0 / dur;
        ws.stats.rounds += 1;
        ws.stats.last_round_secs = now - ws.round_started;
        ws.round_started = now;
        self.refresh_thresholds(now);
        obs!(
            self.ctx.journal,
            now,
            EventKind::PushEnd {
                w: w as u32,
                iter: pushed_iter,
                rows: self.partition.n_rows() as u32,
                bytes: self.model_wire_bytes,
            }
        );
        // This worker now waits for its pull.
        self.server.waiting.push(w);
        self.workers[w].gate_entered = now;
        obs!(
            self.ctx.journal,
            now,
            EventKind::GateEnter {
                w: w as u32,
                iter: pushed_iter,
                min: self.server.versions.min(),
                lead: self.server.versions.lead(w),
                row: -1,
            }
        );
        self.ctx.set_state(w, now, DeviceState::Stall);
        self.drain_waiting(now);
    }

    fn drain_waiting(&mut self, now: Time) {
        if self.ctx.any_server_down() {
            return;
        }
        let mut still_waiting = Vec::new();
        let waiting = std::mem::take(&mut self.server.waiting);
        for w in waiting {
            let t = self.server.thresholds[w];
            if !self.ctx.offline[w]
                && !self.ctx.link_down[w]
                && gate::may_proceed(&self.server.versions, w, t)
            {
                self.grant_pull(w, now);
            } else {
                still_waiting.push(w);
            }
        }
        self.server.waiting = still_waiting;
    }

    fn grant_pull(&mut self, w: usize, now: Time) {
        // Quantize and drain this worker's pending copy.
        let pending = std::mem::replace(
            &mut self.server.pending[w],
            self.workers[w]
                .model
                .params()
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect(),
        );
        let payload = quantize_set(&self.partition, &mut self.server.efs[w], &pending);
        // Stall accounting for ABS (assigned outside the obs! macro so
        // obs-off builds stay behaviorally identical).
        self.workers[w].stats.last_stall_secs = now - self.workers[w].gate_entered;
        obs!(
            self.ctx.journal,
            now,
            EventKind::GateExit {
                w: w as u32,
                iter: self.workers[w].iter + 1,
                waited: now - self.workers[w].gate_entered,
            }
        );
        obs!(
            self.ctx.journal,
            now,
            EventKind::PullStart {
                w: w as u32,
                iter: self.workers[w].iter + 1,
                bytes: self.model_wire_bytes,
            }
        );
        self.ctx.set_state(w, now, DeviceState::Communicate);
        let chunks = self.transport_chunks(w);
        let id = self
            .ctx
            .cluster
            .transport
            .start_flow(now, FlowSpec::new(w, chunks));
        self.flows.insert(id, FlowCtx::Pull(w, payload));
    }

    fn on_pull_done(&mut self, w: usize, payload: GradSet, now: Time) {
        obs!(
            self.ctx.journal,
            now,
            EventKind::PullEnd {
                w: w as u32,
                iter: self.workers[w].iter + 1,
            }
        );
        let lr = self.ctx.cluster.lr;
        let momentum = self.ctx.cfg.momentum;
        {
            let ws = &mut self.workers[w];
            for (mi, g) in payload.iter().enumerate() {
                for r in 0..g.rows() {
                    let wrow = ws.model.params_mut()[mi].row_mut(r);
                    if momentum > 0.0 {
                        ops::sgd_momentum_row(wrow, ws.vel[mi].row_mut(r), g.row(r), lr, momentum);
                    } else {
                        ops::sgd_row(wrow, g.row(r), lr);
                    }
                }
            }
            ws.iter += 1;
        }
        self.ctx.collector.record_iteration(w);
        let iter = self.workers[w].iter;
        obs!(
            self.ctx.journal,
            now,
            EventKind::IterEnd { w: w as u32, iter }
        );
        self.ctx.maybe_eval(w, iter, now, &self.workers[w].model);
        if now < self.ctx.duration() {
            self.start_compute(w, now);
        } else {
            self.workers[w].done = true;
            self.ctx.set_state(w, now, DeviceState::Idle);
        }
    }

    // ----- fault injection ------------------------------------------------

    fn on_fault(&mut self, f: FaultEvent, now: Time) {
        obs!(
            self.ctx.journal,
            now,
            EventKind::Fault {
                kind: f.name(),
                w: f.worker().map_or(-1, |w| w as i64),
            }
        );
        match f {
            FaultEvent::WorkerDown(w) => self.on_worker_down(w, now),
            FaultEvent::WorkerUp(w) => self.on_worker_up(w, now),
            FaultEvent::BlackoutStart(w) => self.on_blackout_start(w, now),
            FaultEvent::BlackoutEnd(w) => self.on_blackout_end(w, now),
            FaultEvent::ServerDown(s) => self.on_server_down(s, now),
            FaultEvent::ServerUp(s) => self.on_server_up(s, now),
            FaultEvent::AggregatorDown(_) | FaultEvent::AggregatorUp(_) => unreachable!(
                "aggregator faults are rejected for baseline strategies at engine construction"
            ),
        }
    }

    /// Drops a worker's prefetched draw, recycling its buffer.
    fn discard_pending(&mut self, w: usize) {
        if let Some(PendingDraw {
            result: Some((grads, _)),
            ..
        }) = self.pending[w].take()
        {
            self.ctx.recycle_grads(grads);
        }
    }

    /// Cancels every in-flight transfer of `target`, returning the
    /// contexts. Nothing of a cancelled transfer is acknowledged; bytes
    /// already on the air are wasted (retransmit-from-scratch).
    fn cancel_flows_of(&mut self, target: usize) -> Vec<FlowCtx> {
        let ids: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, c)| c.worker() == target)
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .map(|id| {
                let ctx = self.flows.remove(&id).expect("just listed");
                self.ctx.cluster.transport.cancel_flow(id);
                ctx
            })
            .collect()
    }

    fn suspend_ctx(&mut self, ctx: FlowCtx) {
        let w = ctx.worker();
        self.workers[w].resume = Some(match ctx {
            FlowCtx::Push(_) => MResume::Push,
            FlowCtx::Pull(_, payload) => MResume::Pull(payload),
            FlowCtx::Resync(_) => MResume::Resync,
        });
    }

    fn on_worker_down(&mut self, w: usize, now: Time) {
        if self.ctx.offline[w] {
            return;
        }
        self.ctx.offline[w] = true;
        // State dies with the device: in-flight transfers, held
        // gradients and any parked resume are all dropped. Its version
        // row is NOT aged out — model-granularity baselines have static
        // membership, so the departed worker pins the BSP/SSP gate until
        // it rejoins (the fragility ROG's membership protocol removes).
        self.cancel_flows_of(w);
        // A transfer parked in retransmit backoff dies with the device.
        self.clear_retx(w);
        self.server.waiting.retain(|&x| x != w);
        if self.workers[w].computing {
            self.stale_timers[w] += 1;
        }
        let ws = &mut self.workers[w];
        ws.computing = false;
        ws.grads = None;
        ws.resume = None;
        self.ctx.set_state(w, now, DeviceState::Offline);
    }

    fn on_worker_up(&mut self, w: usize, now: Time) {
        if !self.ctx.offline[w] {
            return;
        }
        if self.ctx.any_server_down() || self.ctx.link_down[w] {
            self.workers[w].resume = Some(MResume::Resync);
            return;
        }
        self.begin_resync(w, now);
    }

    fn begin_resync(&mut self, w: usize, now: Time) {
        obs!(
            self.ctx.journal,
            now,
            EventKind::ResyncStart {
                w: w as u32,
                bytes: self.model_wire_bytes,
            }
        );
        self.ctx.set_state(w, now, DeviceState::Communicate);
        let chunks = self.transport_chunks(w);
        let id = self
            .ctx
            .cluster
            .transport
            .start_flow(now, FlowSpec::new(w, chunks));
        self.flows.insert(id, FlowCtx::Resync(w));
    }

    /// Completes a rejoin: adopt the most advanced online peer's model
    /// (ties to the lowest index), reset compression residuals and
    /// momentum on both ends, drop the stale averaged gradients the
    /// server still held for this worker, and fast-forward its version
    /// so the gate reflects the adopted iteration.
    fn finish_resync(&mut self, w: usize, now: Time) {
        let mut reference: Option<usize> = None;
        for (i, ws) in self.workers.iter().enumerate() {
            if i == w || self.ctx.offline[i] {
                continue;
            }
            if reference.is_none_or(|r| ws.iter > self.workers[r].iter) {
                reference = Some(i);
            }
        }
        if let Some(r) = reference {
            let model = self.workers[r].model.clone();
            let iter = self.workers[r].iter;
            let ws = &mut self.workers[w];
            ws.model = model;
            ws.iter = iter;
        }
        let iter = self.workers[w].iter;
        obs!(
            self.ctx.journal,
            now,
            EventKind::ResyncEnd { w: w as u32, iter }
        );
        let ws = &mut self.workers[w];
        ws.ef.reset();
        for m in &mut ws.vel {
            m.fill_zero();
        }
        ws.grads = None;
        ws.resume = None;
        // The outage is not an iteration round; restart the round clock
        // so DSSP's rate estimate only sees time spent training.
        ws.round_started = now;
        self.server.efs[w].reset();
        for m in &mut self.server.pending[w] {
            m.fill_zero();
        }
        self.server.versions.record_push(w, iter);
        self.ctx.offline[w] = false;
        self.discard_pending(w);
        if now < self.ctx.duration() {
            self.start_compute(w, now);
        } else {
            self.workers[w].done = true;
            self.ctx.set_state(w, now, DeviceState::Idle);
        }
        // The fast-forwarded version can only open the gate further.
        self.drain_waiting(now);
    }

    fn on_blackout_start(&mut self, w: usize, now: Time) {
        if self.ctx.link_down[w] {
            return;
        }
        self.ctx.link_down[w] = true;
        for ctx in self.cancel_flows_of(w) {
            self.suspend_ctx(ctx);
        }
        // A transfer in retransmit backoff has no flow to cancel; park
        // its context as a resume (retransmit-from-scratch on recovery).
        if let Some(ctx) = self.clear_retx(w) {
            self.suspend_ctx(ctx);
        }
        if !self.ctx.offline[w] && !self.workers[w].done && !self.workers[w].computing {
            self.ctx.set_state(w, now, DeviceState::Stall);
        }
    }

    fn on_blackout_end(&mut self, w: usize, now: Time) {
        if !self.ctx.link_down[w] {
            return;
        }
        self.ctx.link_down[w] = false;
        if !self.ctx.any_server_down() {
            self.resume_worker(w, now);
            self.drain_waiting(now);
        }
    }

    /// The (single logical) parameter server went down. Baselines have
    /// no sharding, so `shard` is always 0 here; the per-shard flag
    /// vector exists for the row engine.
    fn on_server_down(&mut self, shard: usize, now: Time) {
        if self.ctx.server_down[shard] {
            return;
        }
        self.ctx.server_down[shard] = true;
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        for id in ids {
            let ctx = self.flows.remove(&id).expect("just listed");
            self.ctx.cluster.transport.cancel_flow(id);
            let w = ctx.worker();
            self.suspend_ctx(ctx);
            if !self.ctx.offline[w] && !self.workers[w].done && !self.workers[w].computing {
                self.ctx.set_state(w, now, DeviceState::Stall);
            }
        }
        for w in 0..self.workers.len() {
            if let Some(ctx) = self.clear_retx(w) {
                self.suspend_ctx(ctx);
            }
        }
    }

    fn on_server_up(&mut self, shard: usize, now: Time) {
        if !self.ctx.server_down[shard] {
            return;
        }
        self.ctx.server_down[shard] = false;
        if self.ctx.any_server_down() {
            return;
        }
        for w in 0..self.workers.len() {
            if !self.ctx.link_down[w] {
                self.resume_worker(w, now);
            }
        }
        self.drain_waiting(now);
    }

    fn resume_worker(&mut self, w: usize, now: Time) {
        if self.ctx.offline[w] {
            if matches!(self.workers[w].resume, Some(MResume::Resync)) {
                self.workers[w].resume = None;
                self.begin_resync(w, now);
            }
            return;
        }
        match self.workers[w].resume.take() {
            Some(MResume::Push) => self.start_push(w, now),
            Some(MResume::Pull(payload)) => {
                self.ctx.set_state(w, now, DeviceState::Communicate);
                let chunks = self.transport_chunks(w);
                let id = self
                    .ctx
                    .cluster
                    .transport
                    .start_flow(now, FlowSpec::new(w, chunks));
                self.flows.insert(id, FlowCtx::Pull(w, payload));
            }
            Some(MResume::Resync) => self.begin_resync(w, now),
            None => {}
        }
    }
}

/// Quantizes a gradient set row-by-row with error feedback, returning the
/// values the receiver reconstructs.
fn quantize_set(partition: &RowPartition, ef: &mut ErrorFeedback, set: &GradSet) -> GradSet {
    let mut out: GradSet = set
        .iter()
        .map(|m| Matrix::zeros(m.rows(), m.cols()))
        .collect();
    for i in 0..partition.n_rows() {
        let id = RowId(i);
        let r = partition.locate(id);
        let restored = ef.compress(i, set[r.matrix].row(r.row)).decompress();
        out[r.matrix].row_mut(r.row).copy_from_slice(&restored);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Environment, ModelScale, WorkloadKind};

    fn cfg(strategy: Strategy) -> ExperimentConfig {
        ExperimentConfig {
            workload: WorkloadKind::Cruda,
            environment: Environment::Stable,
            strategy,
            model_scale: ModelScale::Small,
            n_workers: 2,
            n_laptop_workers: 0,
            duration_secs: 120.0,
            eval_every: 5,
            seed: 42,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn bsp_completes_iterations_and_checkpoints() {
        let m = run(&cfg(Strategy::Bsp));
        assert!(
            m.mean_iterations >= 10.0,
            "iterations {}",
            m.mean_iterations
        );
        assert!(!m.checkpoints.is_empty());
        assert!(m.composition.compute > 0.0);
        assert!(m.composition.communicate > 0.0);
        assert!(m.total_energy_j > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&cfg(Strategy::Ssp { threshold: 4 }));
        let b = run(&cfg(Strategy::Ssp { threshold: 4 }));
        assert_eq!(a.mean_iterations, b.mean_iterations);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.total_energy_j, b.total_energy_j);
    }

    #[test]
    fn training_improves_the_metric() {
        let m = run(&cfg(Strategy::Bsp));
        let first = m.checkpoints.first().expect("has checkpoints").metric;
        let last = m.checkpoints.last().expect("has checkpoints").metric;
        assert!(
            last > first - 3.0,
            "accuracy should not collapse: {first} -> {last}"
        );
    }

    #[test]
    fn flown_runs_to_completion() {
        let m = run(&cfg(Strategy::Flown {
            min_threshold: 2,
            max_threshold: 8,
        }));
        assert!(m.mean_iterations > 5.0);
    }

    #[test]
    fn bsp_blocks_for_the_whole_outage_then_recovers() {
        use rog_fault::FaultPlan;
        let fault_free = run(&cfg(Strategy::Bsp));
        let mut c = cfg(Strategy::Bsp);
        c.fault_plan = Some(FaultPlan::new().worker_offline(1, 30.0, 90.0));
        let m = run(&c);
        // Static membership: the survivor pins at the barrier for
        // (roughly) the entire 60 s outage — the fragility ROG's
        // dynamic membership removes.
        assert!(
            m.stall_secs > fault_free.stall_secs + 40.0,
            "BSP stall {} vs fault-free {}",
            m.stall_secs,
            fault_free.stall_secs
        );
        assert!(
            m.mean_iterations < fault_free.mean_iterations,
            "outage must cost BSP iterations"
        );
        // But training resumes after the rejoin resync.
        assert!(m.mean_iterations > 5.0, "iters {}", m.mean_iterations);
        let m2 = run(&c);
        assert_eq!(m.checkpoints, m2.checkpoints, "faulty runs replay");
    }

    #[test]
    fn model_engine_survives_blackout_and_server_restart() {
        use rog_fault::FaultPlan;
        let mut c = cfg(Strategy::Ssp { threshold: 4 });
        c.fault_plan = Some(
            FaultPlan::new()
                .link_blackout(0, 20.0, 35.0)
                .server_restart(60.0, 75.0),
        );
        let a = run(&c);
        let b = run(&c);
        assert_eq!(a.checkpoints, b.checkpoints);
        assert!(a.mean_iterations > 5.0, "iters {}", a.mean_iterations);
    }

    #[test]
    fn bsp_workers_stay_in_lockstep() {
        // Under BSP both workers complete the same number of iterations
        // (±1 for the cut-off at the time budget).
        let m = run(&cfg(Strategy::Bsp));
        // mean_iterations is the average; with lockstep the per-worker
        // counts differ by at most 1, so the fractional part is 0 or .5.
        let frac = m.mean_iterations.fract();
        assert!(
            frac < 0.51,
            "lockstep violated: mean iterations {}",
            m.mean_iterations
        );
    }
}
