//! Event-driven training engines.
//!
//! [`model`] runs the model-granularity baselines (BSP / SSP / FLOWN),
//! [`row`] runs ROG (RSP + ATP). Both share [`common::EngineCtx`]: the
//! simulated cluster, the deterministic event queue, per-device state
//! timelines and the metrics collector.

pub mod common;
pub mod model;
pub mod row;

use crate::config::{ExperimentConfig, Strategy};
use crate::metrics::RunMetrics;

/// Runs one experiment, dispatching on the configured strategy.
pub fn run(cfg: &ExperimentConfig) -> RunMetrics {
    match cfg.strategy {
        Strategy::Bsp | Strategy::Ssp { .. } | Strategy::Asp | Strategy::Flown { .. } => {
            model::run(cfg)
        }
        Strategy::Rog { .. } => row::run(cfg),
    }
}
