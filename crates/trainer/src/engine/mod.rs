//! Event-driven training engines.
//!
//! [`model`] runs the model-granularity baselines (BSP / SSP / FLOWN),
//! [`row`] runs ROG (RSP + ATP). Both share [`common::EngineCtx`]: the
//! simulated cluster, the deterministic event queue, per-device state
//! timelines and the metrics collector.

pub mod common;
pub mod model;
pub mod row;

use rog_obs::Journal;

use crate::config::{ExperimentConfig, Strategy};
use crate::metrics::RunMetrics;

/// Runs one experiment, dispatching on the configured strategy.
pub fn run(cfg: &ExperimentConfig) -> RunMetrics {
    run_traced(cfg).0
}

/// Runs one experiment and returns the event journal alongside the
/// metrics. The journal is empty unless `cfg.trace` is set (or the
/// crate is built with `obs-off`, which compiles tracing out).
pub fn run_traced(cfg: &ExperimentConfig) -> (RunMetrics, Journal) {
    match cfg.strategy {
        Strategy::Bsp | Strategy::Ssp { .. } | Strategy::Asp | Strategy::Flown { .. } => {
            model::run_traced(cfg)
        }
        Strategy::Rog { .. } => row::run_traced(cfg),
    }
}
