//! Event-driven training engines.
//!
//! [`model`] runs the model-granularity baselines (BSP / SSP / FLOWN /
//! DSSP / ABS), [`row`] runs ROG (RSP + ATP) and the adaptive-bound
//! hybrid. Both share [`common::EngineCtx`]: the
//! simulated cluster, the deterministic event queue, per-device state
//! timelines and the metrics collector.

pub mod common;
pub mod model;
pub mod row;

use rog_obs::Journal;

use crate::config::{ExperimentConfig, Strategy};
use crate::metrics::RunMetrics;
use crate::run::FleetStats;

/// Runs one experiment, dispatching on the configured strategy.
pub fn run(cfg: &ExperimentConfig) -> RunMetrics {
    run_traced(cfg).0
}

/// Runs one experiment and returns the event journal alongside the
/// metrics. The journal is empty unless `cfg.trace` is set (or the
/// crate is built with `obs-off`, which compiles tracing out).
pub fn run_traced(cfg: &ExperimentConfig) -> (RunMetrics, Journal) {
    let (metrics, journal, _) = run_full(cfg);
    (metrics, journal)
}

/// Runs one experiment and additionally returns the engine-level
/// [`FleetStats`]. The model-granularity baselines report default
/// (all-zero) stats; only the row engine instruments them.
pub fn run_full(cfg: &ExperimentConfig) -> (RunMetrics, Journal, FleetStats) {
    match cfg.strategy {
        Strategy::Bsp
        | Strategy::Ssp { .. }
        | Strategy::Asp
        | Strategy::Flown { .. }
        | Strategy::Dssp { .. }
        | Strategy::Abs { .. } => {
            let (metrics, journal) = model::run_traced(cfg);
            (metrics, journal, FleetStats::default())
        }
        Strategy::Rog { .. } | Strategy::RogAdaptive { .. } => row::run_full(cfg),
    }
}
