//! Simulated robot cluster: devices, workload, channel, wire scaling.

use rog_models::batching::dynamic_batches;
use rog_models::{CrimpSpec, CrimpWorkload, CrudaSpec, CrudaWorkload, Dataset, Mlp, Workload};
use rog_net::{Channel, Trace};
use rog_tensor::rng::DetRng;
use rog_transport::SimTransport;

use crate::config::{ExperimentConfig, ModelScale, WorkloadKind};

/// Kind of a simulated device (paper testbed: Jetson NX robots and
/// weaker laptops; one laptop is the parameter-server hotspot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Four-wheel robot with a Jetson Xavier NX.
    Robot,
    /// Laptop (i7-8565U + 940MX), ~2/3 of the robot's training speed.
    Laptop,
}

/// One training worker.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Robot or laptop.
    pub kind: DeviceKind,
    /// Relative compute power (robot = 1.0).
    pub compute_power: f64,
    /// Per-iteration batch size after dynamic batching and batch scale.
    pub batch: usize,
}

/// A built workload: either paradigm behind one enum (object-safe
/// delegation without boxing).
#[derive(Debug, Clone)]
pub enum BuiltWorkload {
    /// Domain adaptation.
    Cruda(CrudaWorkload),
    /// Implicit mapping.
    Crimp(CrimpWorkload),
}

impl Workload for BuiltWorkload {
    fn name(&self) -> &'static str {
        match self {
            BuiltWorkload::Cruda(w) => w.name(),
            BuiltWorkload::Crimp(w) => w.name(),
        }
    }

    fn make_model(&self, rng: &mut DetRng) -> Mlp {
        match self {
            BuiltWorkload::Cruda(w) => w.make_model(rng),
            BuiltWorkload::Crimp(w) => w.make_model(rng),
        }
    }

    fn shards(&self) -> &[Dataset] {
        match self {
            BuiltWorkload::Cruda(w) => w.shards(),
            BuiltWorkload::Crimp(w) => w.shards(),
        }
    }

    fn test_metric(&self, model: &Mlp) -> f64 {
        match self {
            BuiltWorkload::Cruda(w) => w.test_metric(model),
            BuiltWorkload::Crimp(w) => w.test_metric(model),
        }
    }

    fn metric_name(&self) -> &'static str {
        match self {
            BuiltWorkload::Cruda(w) => w.metric_name(),
            BuiltWorkload::Crimp(w) => w.metric_name(),
        }
    }

    fn metric_higher_better(&self) -> bool {
        match self {
            BuiltWorkload::Cruda(w) => w.metric_higher_better(),
            BuiltWorkload::Crimp(w) => w.metric_higher_better(),
        }
    }

    fn base_batch_size(&self) -> usize {
        match self {
            BuiltWorkload::Cruda(w) => w.base_batch_size(),
            BuiltWorkload::Crimp(w) => w.base_batch_size(),
        }
    }

    fn learning_rate(&self) -> f32 {
        match self {
            BuiltWorkload::Cruda(w) => w.learning_rate(),
            BuiltWorkload::Crimp(w) => w.learning_rate(),
        }
    }
}

/// Everything an engine needs to run one experiment.
#[derive(Debug)]
pub struct Cluster {
    /// The training workers (the parameter server is an extra laptop
    /// hosting the hotspot; it does not train).
    pub devices: Vec<Device>,
    /// The transport plane over the shared wireless channel (one link
    /// per worker), through the deterministic sim backend.
    pub transport: SimTransport,
    /// The built workload with one shard per worker.
    pub workload: BuiltWorkload,
    /// The shared initial model.
    pub init_model: Mlp,
    /// Multiplier from the synthetic model's compressed row bytes to
    /// on-the-wire bytes, calibrating total traffic to the paper's
    /// volumes (each synthetic row stands for `wire_scale` real rows).
    pub wire_scale: f64,
    /// Effective learning rate.
    pub lr: f32,
}

impl Cluster {
    /// Builds the cluster for a config, deterministically from
    /// `cfg.seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config is inconsistent (zero workers, more laptops
    /// than workers).
    pub fn build(cfg: &ExperimentConfig) -> Self {
        assert!(cfg.n_workers > 0, "need at least one worker");
        assert!(
            cfg.n_laptop_workers <= cfg.n_workers,
            "more laptop workers than workers"
        );
        let root = DetRng::new(cfg.seed);

        // Devices: robots first, laptops last (paper: 3 robots + 1
        // laptop worker by default).
        let powers: Vec<f64> = (0..cfg.n_workers)
            .map(|w| {
                if w < cfg.n_workers - cfg.n_laptop_workers {
                    1.0
                } else {
                    2.0 / 3.0
                }
            })
            .collect();

        // Workload.
        let mut wl_rng = root.fork(0x10);
        let workload = match (cfg.workload, cfg.model_scale) {
            (WorkloadKind::Cruda, ModelScale::Paper) => {
                BuiltWorkload::Cruda(CrudaSpec::paper().build(cfg.n_workers, &mut wl_rng))
            }
            (WorkloadKind::Cruda, ModelScale::Small) => {
                BuiltWorkload::Cruda(CrudaSpec::small().build(cfg.n_workers, &mut wl_rng))
            }
            (WorkloadKind::CrudaConv, ModelScale::Paper) => {
                BuiltWorkload::Cruda(CrudaSpec::conv_paper().build(cfg.n_workers, &mut wl_rng))
            }
            (WorkloadKind::CrudaConv, ModelScale::Small) => {
                BuiltWorkload::Cruda(CrudaSpec::conv_small().build(cfg.n_workers, &mut wl_rng))
            }
            (WorkloadKind::Crimp, ModelScale::Paper) => {
                BuiltWorkload::Crimp(CrimpSpec::paper().build(cfg.n_workers, &mut wl_rng))
            }
            (WorkloadKind::Crimp, ModelScale::Small) => {
                BuiltWorkload::Crimp(CrimpSpec::small().build(cfg.n_workers, &mut wl_rng))
            }
        };

        let base_batch = (workload.base_batch_size() as f64 * cfg.batch_scale)
            .round()
            .max(1.0) as usize;
        let batches = dynamic_batches(&powers, base_batch);
        let devices: Vec<Device> = powers
            .iter()
            .zip(&batches)
            .map(|(&p, &b)| Device {
                kind: if (p - 1.0).abs() < 1e-9 {
                    DeviceKind::Robot
                } else {
                    DeviceKind::Laptop
                },
                compute_power: p,
                batch: b,
            })
            .collect();

        // Channel: capacity plus one fading link per (worker, shard)
        // pair, worker-major (`rog_net::shard_link`). With one shard
        // the layout and the RNG stream offsets collapse to the
        // historical one-link-per-worker channel, keeping single-shard
        // runs bit-identical; extra shard links draw from a disjoint
        // fork range so shard 0's stream never shifts. Traces are
        // generated long enough to cover the run and wrap thereafter.
        let profile = cfg.environment.profile();
        let trace_len = cfg.duration_secs.clamp(300.0, 1800.0);
        let shards = cfg.effective_shards();
        let capacity = cfg
            .capacity_trace
            .clone()
            .unwrap_or_else(|| profile.generate(root.fork(0x50).seed(), trace_len));
        let mut links: Vec<Trace> = Vec::with_capacity(cfg.n_workers * shards);
        match &cfg.link_traces {
            Some(traces) => {
                assert!(!traces.is_empty(), "link_traces must not be empty");
                for w in 0..cfg.n_workers {
                    for _s in 0..shards {
                        links.push(traces[w % traces.len()].clone());
                    }
                }
            }
            None => {
                for w in 0..cfg.n_workers {
                    for s in 0..shards {
                        let fork = if s == 0 {
                            0x60 + w as u64
                        } else {
                            0x6000 + (w as u64) * 0x40 + s as u64
                        };
                        links.push(profile.generate_link(root.fork(fork).seed(), trace_len));
                    }
                }
            }
        }
        let transport =
            SimTransport::new(Channel::new(capacity, links).with_sharing(cfg.mac_sharing));

        // Initial shared model and wire scaling.
        let init_model = workload.make_model(&mut root.fork(0x20));
        // Calibrated against the one-bit payload regardless of the
        // selected codec, so a codec change shows up as a byte delta in
        // the metrics instead of being scaled away.
        let framed_compressed: u64 = init_model
            .row_widths()
            .iter()
            .map(|&w| {
                rog_net::wire::framed_row_bytes(rog_compress::RowCodec::payload_bytes(
                    &rog_compress::OneBitCodec,
                    w,
                ))
            })
            .sum();
        let wire_scale = cfg.compressed_bytes() as f64 / framed_compressed.max(1) as f64;

        let lr = cfg.lr_override.unwrap_or_else(|| workload.learning_rate());

        Self {
            devices,
            transport,
            workload,
            init_model,
            wire_scale,
            lr,
        }
    }

    /// Scaled wire bytes of one framed row whose compressed payload is
    /// `payload` bytes.
    pub fn scaled_row_bytes(&self, payload: u64) -> u64 {
        ((rog_net::wire::framed_row_bytes(payload) as f64) * self.wire_scale).round() as u64
    }

    /// Scaled wire bytes of a whole-model message (baselines).
    pub fn scaled_model_bytes(&self, payloads: impl Iterator<Item = u64>) -> u64 {
        payloads.map(|p| self.scaled_row_bytes(p)).sum::<u64>() + rog_net::wire::message_overhead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Environment, Strategy};

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig {
            model_scale: ModelScale::Small,
            n_workers: 3,
            n_laptop_workers: 1,
            duration_secs: 60.0,
            environment: Environment::Stable,
            strategy: Strategy::Bsp,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = Cluster::build(&small_cfg());
        let b = Cluster::build(&small_cfg());
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.init_model.params()[0], b.init_model.params()[0]);
        assert_eq!(a.wire_scale, b.wire_scale);
    }

    #[test]
    fn laptops_get_smaller_batches() {
        let c = Cluster::build(&small_cfg());
        assert_eq!(c.devices.len(), 3);
        assert_eq!(c.devices[0].kind, DeviceKind::Robot);
        assert_eq!(c.devices[2].kind, DeviceKind::Laptop);
        assert!(c.devices[2].batch < c.devices[0].batch);
    }

    #[test]
    fn wire_scale_hits_the_target_volume() {
        let cfg = small_cfg();
        let c = Cluster::build(&cfg);
        let total: u64 = c
            .init_model
            .row_widths()
            .iter()
            .map(|&w| {
                c.scaled_row_bytes(rog_compress::RowCodec::payload_bytes(
                    &rog_compress::OneBitCodec,
                    w,
                ))
            })
            .sum();
        let target = cfg.compressed_bytes();
        let ratio = total as f64 / target as f64;
        // Within ~2% of 2.1 MB (framing rounds per row).
        assert!((0.95..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn batch_scale_scales_batches() {
        let mut cfg = small_cfg();
        cfg.batch_scale = 2.0;
        let c2 = Cluster::build(&cfg);
        cfg.batch_scale = 1.0;
        let c1 = Cluster::build(&cfg);
        assert_eq!(c2.devices[0].batch, 2 * c1.devices[0].batch);
    }

    #[test]
    fn shards_match_worker_count() {
        let c = Cluster::build(&small_cfg());
        assert_eq!(c.workload.shards().len(), 3);
    }
}
