//! The compiled fault schedule: a cursor over sorted point events.

use rog_sim::Time;

/// Tolerance when matching an event time against the engine clock,
/// mirroring the `1e-9` slack used by the trainer event loops.
const EPS: Time = 1e-9;

/// A point event produced by compiling a `FaultPlan` window into its
/// start/end edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Worker `w` departs: state lost, flows cancelled.
    WorkerDown(usize),
    /// Worker `w` returns and must resync before training.
    WorkerUp(usize),
    /// Worker `w`'s link goes dark: flows cancelled, state kept.
    BlackoutStart(usize),
    /// Worker `w`'s link returns: interrupted transfers restart.
    BlackoutEnd(usize),
    /// Parameter-server shard `s` goes down (shard 0 in an unsharded
    /// run).
    ServerDown(usize),
    /// Parameter-server shard `s` returns from its checkpoint.
    ServerUp(usize),
    /// Edge aggregator `a` goes down, severing its member workers from
    /// the parameter plane.
    AggregatorDown(usize),
    /// Edge aggregator `a` returns; severed members resume.
    AggregatorUp(usize),
}

impl FaultEvent {
    /// Stable lowercase name (journal wire format).
    pub fn name(self) -> &'static str {
        match self {
            FaultEvent::WorkerDown(_) => "worker_down",
            FaultEvent::WorkerUp(_) => "worker_up",
            FaultEvent::BlackoutStart(_) => "blackout_start",
            FaultEvent::BlackoutEnd(_) => "blackout_end",
            FaultEvent::ServerDown(_) => "server_down",
            FaultEvent::ServerUp(_) => "server_up",
            FaultEvent::AggregatorDown(_) => "agg_down",
            FaultEvent::AggregatorUp(_) => "agg_up",
        }
    }

    /// The affected worker index, if the event is worker-scoped.
    pub fn worker(self) -> Option<usize> {
        match self {
            FaultEvent::WorkerDown(w)
            | FaultEvent::WorkerUp(w)
            | FaultEvent::BlackoutStart(w)
            | FaultEvent::BlackoutEnd(w) => Some(w),
            FaultEvent::ServerDown(_)
            | FaultEvent::ServerUp(_)
            | FaultEvent::AggregatorDown(_)
            | FaultEvent::AggregatorUp(_) => None,
        }
    }

    /// The affected server shard, if the event is server-scoped.
    pub fn shard(self) -> Option<usize> {
        match self {
            FaultEvent::ServerDown(s) | FaultEvent::ServerUp(s) => Some(s),
            _ => None,
        }
    }

    /// The affected edge aggregator, if the event is aggregator-scoped.
    pub fn aggregator(self) -> Option<usize> {
        match self {
            FaultEvent::AggregatorDown(a) | FaultEvent::AggregatorUp(a) => Some(a),
            _ => None,
        }
    }

    /// Total order for events at the same instant: recoveries first
    /// (so a back-to-back `[a,t) [t,b)` pair of windows closes before
    /// the next opens), then kind, then worker index.
    pub(crate) fn rank(self) -> (u8, u8, usize) {
        match self {
            FaultEvent::WorkerUp(w) => (0, 0, w),
            FaultEvent::BlackoutEnd(w) => (0, 1, w),
            FaultEvent::ServerUp(s) => (0, 2, s),
            FaultEvent::AggregatorUp(a) => (0, 3, a),
            FaultEvent::WorkerDown(w) => (1, 0, w),
            FaultEvent::BlackoutStart(w) => (1, 1, w),
            FaultEvent::ServerDown(s) => (1, 2, s),
            FaultEvent::AggregatorDown(a) => (1, 3, a),
        }
    }
}

/// Sorted fault events with a consumption cursor.
///
/// The default value is the empty clock: [`FaultClock::next_time`]
/// returns `None` and [`FaultClock::pop_due`] returns nothing, which is
/// what makes an empty `FaultPlan` zero-cost inside the engines.
#[derive(Debug, Clone, Default)]
pub struct FaultClock {
    events: Vec<(Time, FaultEvent)>,
    cursor: usize,
}

impl FaultClock {
    /// Builds a clock from events already sorted by `(time, rank)`.
    pub(crate) fn from_events(events: Vec<(Time, FaultEvent)>) -> Self {
        debug_assert!(events
            .windows(2)
            .all(|w| (w[0].0, w[0].1.rank()) <= (w[1].0, w[1].1.rank())));
        Self { events, cursor: 0 }
    }

    /// Virtual time of the next unconsumed event, if any.
    #[must_use]
    pub fn next_time(&self) -> Option<Time> {
        self.events.get(self.cursor).map(|&(t, _)| t)
    }

    /// Consumes and returns every event due at or before `now` (with a
    /// small tolerance), in schedule order.
    pub fn pop_due(&mut self, now: Time) -> Vec<FaultEvent> {
        let mut out = Vec::new();
        while let Some(&(t, e)) = self.events.get(self.cursor) {
            if t <= now + EPS {
                out.push(e);
                self.cursor += 1;
            } else {
                break;
            }
        }
        out
    }

    /// Number of events not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_clock_is_empty() {
        let mut c = FaultClock::default();
        assert_eq!(c.next_time(), None);
        assert!(c.pop_due(1e9).is_empty());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn pop_due_consumes_in_order_with_tolerance() {
        let mut c = FaultClock::from_events(vec![
            (1.0, FaultEvent::WorkerDown(0)),
            (1.0, FaultEvent::BlackoutStart(1)),
            (2.0, FaultEvent::WorkerUp(0)),
        ]);
        assert_eq!(c.remaining(), 3);
        assert!(c.pop_due(0.5).is_empty());
        // Due exactly at t and within the 1e-9 slack.
        assert_eq!(
            c.pop_due(1.0 - 1e-12),
            vec![FaultEvent::WorkerDown(0), FaultEvent::BlackoutStart(1)]
        );
        assert_eq!(c.next_time(), Some(2.0));
        assert_eq!(c.pop_due(5.0), vec![FaultEvent::WorkerUp(0)]);
        assert_eq!(c.remaining(), 0);
        assert_eq!(c.next_time(), None);
    }
}
