//! Line-oriented script format for fault plans, used by
//! `rogctl --fault-plan <file>`.
//!
//! One window per line; `#` starts a comment; blank lines are ignored:
//!
//! ```text
//! # worker 2 drives out of range twice
//! offline 2 40 80
//! offline 2 140 180
//! blackout 1 60 75
//! server-restart 1 200 210
//! agg-restart 0 120 150
//! loss 1 100 160 0.3
//! ```
//!
//! `server-restart <shard> <t0> <t1>` takes the server shard down
//! during `[t0, t1)`. The legacy two-argument form `server-restart
//! <t0> <t1>` is still accepted and defaults to shard 0 — with a
//! warning from [`FaultPlan::parse_with_warnings`], because silently
//! reading it as a cluster-wide outage under a sharded plane would be
//! wrong.
//!
//! The `loss <link> <t0> <t1> <rate>` directive adds `rate` extra
//! chunk-loss probability on that worker's link during `[t0, t1)`;
//! windows must not overlap per link and rates must be in `[0, 1]`.
//!
//! `agg-restart <aggregator> <t0> <t1>` takes one edge aggregator of a
//! hierarchical run down, severing the workers it fronts; engines
//! reject it when the run has no aggregation tier.

use crate::plan::{FaultKind, FaultPlan, FaultPlanError, FaultWindow, LossWindow};

/// One parsed script line.
enum ScriptEntry {
    Fault(FaultWindow),
    Loss(LossWindow),
}

impl FaultPlan {
    /// Parses the script format described in the module docs,
    /// discarding any warnings. See
    /// [`FaultPlan::parse_with_warnings`].
    ///
    /// # Errors
    ///
    /// Returns a [`FaultPlanError`] naming the offending line on an
    /// unknown directive, a malformed number, or an invalid window.
    pub fn parse(text: &str) -> Result<Self, FaultPlanError> {
        Self::parse_with_warnings(text).map(|(plan, _)| plan)
    }

    /// Parses the script format described in the module docs and also
    /// returns human-readable warnings for accepted-but-suspicious
    /// lines — currently the shard-less `server-restart <t0> <t1>`
    /// form, which defaults to shard 0.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultPlanError`] naming the offending line on an
    /// unknown directive, a malformed number, or an invalid window.
    pub fn parse_with_warnings(text: &str) -> Result<(Self, Vec<String>), FaultPlanError> {
        let mut plan = FaultPlan::new();
        let mut warnings = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let (entry, warning) =
                parse_line(&fields).map_err(|e| FaultPlanError::new(e).with_line(idx + 1, raw))?;
            if let Some(w) = warning {
                warnings.push(format!("line {}: {}", idx + 1, w));
            }
            match entry {
                ScriptEntry::Fault(window) => plan.try_push(window),
                ScriptEntry::Loss(window) => plan.try_push_loss(window),
            }
            .map_err(|e| e.with_line(idx + 1, raw))?;
        }
        Ok((plan, warnings))
    }

    /// Renders the plan back into the script format. Round-trips through
    /// [`FaultPlan::parse`] as long as all times survive `{}` formatting
    /// (true for every plan built from parsed scripts).
    #[must_use]
    pub fn to_script(&self) -> String {
        let mut out = String::new();
        for w in self.windows() {
            match w.kind {
                FaultKind::WorkerOffline(i) => {
                    out.push_str(&format!("offline {} {} {}\n", i, w.start, w.end));
                }
                FaultKind::LinkBlackout(i) => {
                    out.push_str(&format!("blackout {} {} {}\n", i, w.start, w.end));
                }
                FaultKind::ServerOutage(s) => {
                    out.push_str(&format!("server-restart {} {} {}\n", s, w.start, w.end));
                }
                FaultKind::AggregatorOutage(a) => {
                    out.push_str(&format!("agg-restart {} {} {}\n", a, w.start, w.end));
                }
            }
        }
        for w in self.loss_windows() {
            out.push_str(&format!(
                "loss {} {} {} {}\n",
                w.link, w.start, w.end, w.rate
            ));
        }
        out
    }
}

fn parse_line(fields: &[&str]) -> Result<(ScriptEntry, Option<String>), String> {
    let num = |s: &str| -> Result<f64, String> {
        s.parse::<f64>().map_err(|_| format!("bad number `{s}`"))
    };
    let index = |s: &str| -> Result<usize, String> {
        s.parse::<usize>()
            .map_err(|_| format!("bad worker index `{s}`"))
    };
    let shard = |s: &str| -> Result<usize, String> {
        s.parse::<usize>()
            .map_err(|_| format!("bad shard index `{s}`"))
    };
    let entry = match fields {
        ["offline", w, s, e] => ScriptEntry::Fault(FaultWindow {
            kind: FaultKind::WorkerOffline(index(w)?),
            start: num(s)?,
            end: num(e)?,
        }),
        ["blackout", w, s, e] => ScriptEntry::Fault(FaultWindow {
            kind: FaultKind::LinkBlackout(index(w)?),
            start: num(s)?,
            end: num(e)?,
        }),
        ["server-restart", sh, s, e] => ScriptEntry::Fault(FaultWindow {
            kind: FaultKind::ServerOutage(shard(sh)?),
            start: num(s)?,
            end: num(e)?,
        }),
        ["server-restart", s, e] => {
            let entry = ScriptEntry::Fault(FaultWindow {
                kind: FaultKind::ServerOutage(0),
                start: num(s)?,
                end: num(e)?,
            });
            return Ok((
                entry,
                Some(
                    "`server-restart` with no shard argument defaults to shard 0 \
                     (use `server-restart <shard> <t0> <t1>`)"
                        .to_string(),
                ),
            ));
        }
        ["agg-restart", a, s, e] => ScriptEntry::Fault(FaultWindow {
            kind: FaultKind::AggregatorOutage(
                a.parse::<usize>()
                    .map_err(|_| format!("bad aggregator index `{a}`"))?,
            ),
            start: num(s)?,
            end: num(e)?,
        }),
        ["loss", w, s, e, r] => ScriptEntry::Loss(LossWindow {
            link: index(w)?,
            start: num(s)?,
            end: num(e)?,
            rate: num(r)?,
        }),
        [verb, ..] => {
            return Err(format!(
                "unknown directive `{verb}` \
                 (expected offline/blackout/server-restart/agg-restart/loss)"
            ))
        }
        [] => unreachable!("blank lines filtered by caller"),
    };
    Ok((entry, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "\
# churn for worker 2
offline 2 40 80
offline 2 140 180   # second dropout
blackout 1 60 75

server-restart 200 210
loss 1 100 160 0.3  # interference burst
loss 3 0 600 0.05
";

    #[test]
    fn parses_directives_comments_and_blank_lines() {
        let plan = FaultPlan::parse(SCRIPT).expect("valid script");
        assert_eq!(plan.windows().len(), 4);
        assert_eq!(plan.windows()[0].kind, FaultKind::WorkerOffline(2));
        assert_eq!(plan.windows()[2].kind, FaultKind::LinkBlackout(1));
        assert_eq!(plan.windows()[3].kind, FaultKind::ServerOutage(0));
        assert_eq!(plan.windows()[3].start, 200.0);
        assert_eq!(plan.loss_windows().len(), 2);
        assert_eq!(
            plan.loss_windows()[0],
            LossWindow {
                link: 1,
                start: 100.0,
                end: 160.0,
                rate: 0.3
            }
        );
        assert_eq!(plan.max_worker(), Some(3), "loss links count");
    }

    #[test]
    fn round_trips_through_script_text() {
        let plan = FaultPlan::parse(SCRIPT).expect("valid script");
        let text = plan.to_script();
        assert!(
            text.contains("server-restart 0 200 210\n"),
            "rendered form is shard-explicit: {text}"
        );
        let (again, warnings) = FaultPlan::parse_with_warnings(&text).expect("round-trip");
        assert_eq!(plan, again);
        assert!(warnings.is_empty(), "rendered scripts are warning-free");
    }

    #[test]
    fn shardless_server_restart_defaults_to_shard_zero_with_warning() {
        let (plan, warnings) =
            FaultPlan::parse_with_warnings("server-restart 200 210").expect("legacy form");
        assert_eq!(plan.windows()[0].kind, FaultKind::ServerOutage(0));
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("line 1"), "{warnings:?}");
        assert!(warnings[0].contains("defaults to shard 0"), "{warnings:?}");
        // The plain parser accepts the same script silently.
        assert_eq!(FaultPlan::parse("server-restart 200 210").unwrap(), plan);
    }

    #[test]
    fn shard_explicit_server_restart_parses_and_round_trips() {
        let (plan, warnings) = FaultPlan::parse_with_warnings(
            "server-restart 2 50 60\nserver-restart 0 55 70  # overlap ok across shards",
        )
        .expect("shard form");
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(plan.windows()[0].kind, FaultKind::ServerOutage(2));
        assert_eq!(plan.windows()[1].kind, FaultKind::ServerOutage(0));
        assert_eq!(plan.max_shard(), Some(2));
        let again = FaultPlan::parse(&plan.to_script()).expect("round-trip");
        assert_eq!(plan, again);
        let err = FaultPlan::parse("server-restart x 50 60").unwrap_err();
        assert!(err.to_string().contains("bad shard index"), "{err}");
    }

    #[test]
    fn agg_restart_parses_and_round_trips() {
        let plan =
            FaultPlan::parse("agg-restart 1 120 150\nagg-restart 0 130 160").expect("agg form");
        assert_eq!(plan.windows()[0].kind, FaultKind::AggregatorOutage(1));
        assert_eq!(plan.windows()[1].kind, FaultKind::AggregatorOutage(0));
        assert_eq!(plan.max_aggregator(), Some(1));
        assert_eq!(plan.max_worker(), None, "aggregators are not workers");
        assert_eq!(plan.max_shard(), None);
        let again = FaultPlan::parse(&plan.to_script()).expect("round-trip");
        assert_eq!(plan, again);
        let err = FaultPlan::parse("agg-restart x 120 150").unwrap_err();
        assert!(err.to_string().contains("bad aggregator index"), "{err}");
    }

    #[test]
    fn loss_only_script_round_trips() {
        let plan = FaultPlan::new()
            .link_loss(0, 5.0, 25.0, 0.125)
            .link_loss(0, 30.0, 45.5, 1.0)
            .link_loss(2, 0.0, 100.0, 0.01);
        let text = plan.to_script();
        assert!(text.contains("loss 0 5 25 0.125\n"), "{text}");
        let again = FaultPlan::parse(&text).expect("round-trip");
        assert_eq!(plan, again);
    }

    #[test]
    fn errors_name_the_line() {
        let err = FaultPlan::parse("offline 1 0 10\nfrobnicate 3 4 5").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = FaultPlan::parse("offline one 0 10").unwrap_err();
        assert!(err.to_string().contains("bad worker index"), "{err}");
        let err = FaultPlan::parse("offline 1 10 5").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = FaultPlan::parse("offline 1 10").unwrap_err();
        assert!(err.to_string().contains("unknown directive"), "{err}");
    }

    #[test]
    fn bad_loss_lines_are_rejected_with_line_numbers() {
        let err = FaultPlan::parse("loss 1 0 10").unwrap_err();
        assert!(err.to_string().contains("unknown directive"), "{err}");
        let err = FaultPlan::parse("loss 1 0 10 1.5").unwrap_err();
        assert!(err.to_string().contains("out of [0, 1]"), "{err}");
        let err = FaultPlan::parse("loss 1 0 10 0.2\nloss 1 5 15 0.2").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("overlaps"), "{err}");
    }

    #[test]
    fn empty_and_comment_only_scripts_parse_to_empty_plan() {
        assert!(FaultPlan::parse("").expect("empty").is_empty());
        assert!(FaultPlan::parse("# nothing\n\n")
            .expect("comments")
            .is_empty());
    }

    #[test]
    fn parse_errors_carry_line_number_and_text() {
        let err = FaultPlan::parse("offline 1 0 10\nfrobnicate 3 4 5  # bad").unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert_eq!(err.line_text(), Some("frobnicate 3 4 5  # bad"));
        assert!(err.message().contains("unknown directive"), "{err}");
        assert!(err.to_string().contains("`frobnicate 3 4 5  # bad`"));

        // Window-validation failures point at the line too.
        let err = FaultPlan::parse("offline 1 0 10\noffline 1 5 15").unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert_eq!(err.line_text(), Some("offline 1 5 15"));
        assert!(err.message().contains("overlaps"), "{err}");

        // Builder-path errors have no location.
        let mut plan = FaultPlan::new();
        let err = plan
            .try_push(FaultWindow {
                kind: FaultKind::WorkerOffline(0),
                start: 5.0,
                end: 4.0,
            })
            .unwrap_err();
        assert_eq!(err.line(), None);
        assert_eq!(err.line_text(), None);
    }

    mod roundtrip_proptests {
        use super::*;
        use proptest::prelude::*;
        use rog_tensor::rng::DetRng;

        /// Builds a random — but valid — plan from one seed, exercising
        /// every expressible directive: all four fault kinds plus loss
        /// windows, with awkward fractional times and rates.
        fn random_plan(seed: u64) -> FaultPlan {
            let mut rng = DetRng::new(seed ^ 0x5eed_f007);
            let mut plan = FaultPlan::new();
            let n = 1 + rng.index(12);
            for _ in 0..n {
                // Times deliberately include long-decimal floats (the
                // raw uniform draw) and not just round grid points: the
                // script must survive `{}` formatting byte-for-byte.
                let start = match rng.index(3) {
                    0 => rng.index(500) as f64,
                    1 => (rng.index(5000) as f64) / 10.0,
                    _ => rng.uniform_range(0.0, 500.0),
                };
                let dur = match rng.index(3) {
                    0 => 1.0 + rng.index(60) as f64,
                    1 => 0.125 + (rng.index(400) as f64) / 8.0,
                    _ => rng.uniform_range(1e-6, 60.0),
                };
                let idx = rng.index(8);
                let res = match rng.index(5) {
                    0 => plan.try_push(FaultWindow {
                        kind: FaultKind::WorkerOffline(idx),
                        start,
                        end: start + dur,
                    }),
                    1 => plan.try_push(FaultWindow {
                        kind: FaultKind::LinkBlackout(idx),
                        start,
                        end: start + dur,
                    }),
                    2 => plan.try_push(FaultWindow {
                        kind: FaultKind::ServerOutage(idx % 4),
                        start,
                        end: start + dur,
                    }),
                    3 => plan.try_push(FaultWindow {
                        kind: FaultKind::AggregatorOutage(idx % 4),
                        start,
                        end: start + dur,
                    }),
                    _ => {
                        let rate = match rng.index(3) {
                            0 => (rng.index(101) as f64) / 100.0,
                            1 => 1.0,
                            _ => rng.uniform(),
                        };
                        plan.try_push_loss(LossWindow {
                            link: idx,
                            start,
                            end: start + dur,
                            rate,
                        })
                    }
                };
                // Overlaps with an earlier same-kind window are the
                // only admissible rejection; everything else is a bug
                // in the generator above.
                if let Err(e) = res {
                    assert!(e.message().contains("overlaps"), "{e}");
                }
            }
            plan
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]
            /// Every expressible plan round-trips `to_script` →
            /// `parse_with_warnings` into an equal plan, an identical
            /// re-rendered script, and zero warnings. The scenario
            /// generator in `rog-fuzz` leans on this: a shrunk repro
            /// is exchanged exclusively as script text.
            #[test]
            fn every_expressible_plan_round_trips(seed in 0u64..512) {
                let plan = random_plan(seed);
                let text = plan.to_script();
                let (again, warnings) =
                    FaultPlan::parse_with_warnings(&text).expect("rendered scripts parse");
                prop_assert!(warnings.is_empty(), "warnings: {warnings:?}");
                prop_assert_eq!(&again, &plan);
                prop_assert_eq!(again.to_script(), text);
            }
        }
    }
}
