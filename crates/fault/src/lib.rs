//! Deterministic fault injection for the ROG simulation.
//!
//! Robotic IoT clusters lose workers: a robot drives out of radio range,
//! reboots after a brownout, or the parameter server restarts from a
//! checkpoint. This crate models those events as a declarative
//! [`FaultPlan`] — a set of *windows* during which a worker is offline,
//! a worker's wireless link is blacked out, or the server is down — that
//! is compiled into a [`FaultClock`] of point events scheduled on the
//! `rog-sim` virtual clock. Because the plan is pure data and the clock
//! is consumed inside the deterministic event loop, every faulted run is
//! bit-reproducible: same plan + same seed ⇒ identical trajectory.
//!
//! Plans come from three sources:
//!
//! * hand-built via the builder methods ([`FaultPlan::worker_offline`],
//!   [`FaultPlan::link_blackout`], [`FaultPlan::server_restart`]),
//! * a seeded churn generator ([`FaultPlan::seeded_churn`]) drawing
//!   exponential up/down intervals from a [`ChurnProfile`],
//! * a tiny line-oriented script format ([`FaultPlan::parse`] /
//!   [`FaultPlan::to_script`]) for `rogctl --fault-plan <file>`.
//!
//! An empty plan compiles to an empty clock and is guaranteed zero-cost:
//! engines that consult an empty [`FaultClock`] behave byte-identically
//! to engines with no fault support at all.
//!
//! # Example
//!
//! ```
//! use rog_fault::{FaultPlan, FaultEvent};
//!
//! let plan = FaultPlan::new()
//!     .worker_offline(2, 40.0, 80.0)
//!     .link_blackout(1, 10.0, 15.0);
//! let mut clock = plan.schedule();
//! assert_eq!(clock.next_time(), Some(10.0));
//! assert_eq!(clock.pop_due(10.0), vec![FaultEvent::BlackoutStart(1)]);
//! assert_eq!(clock.next_time(), Some(15.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod plan;
mod script;

pub use clock::{FaultClock, FaultEvent};
pub use plan::{ChurnProfile, FaultKind, FaultPlan, FaultPlanError, FaultWindow, LossWindow};
