//! The declarative fault plan: validated windows plus a seeded churn
//! generator.

use crate::clock::{FaultClock, FaultEvent};
use rog_sim::Time;
use rog_tensor::rng::DetRng;

/// What a fault window disables while it is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker process itself is gone (robot rebooted / drove away):
    /// in-flight transfers are lost, local optimizer state is lost, and
    /// the worker must resync on rejoin.
    WorkerOffline(usize),
    /// Only the worker's wireless link is down; the worker keeps its
    /// local state and resumes the interrupted transfer (from scratch —
    /// retransmit semantics) when the link returns.
    LinkBlackout(usize),
    /// Parameter-server shard `s` is down (checkpoint/restart). All
    /// in-flight transfers touching that shard are cancelled; workers
    /// stall on rows it homes — or, under a sharded plane, keep
    /// training rows homed elsewhere — until it returns. Shard state is
    /// durable (checkpointed). Unsharded runs use shard 0.
    ServerOutage(usize),
    /// Edge aggregator `a` is down: every worker it fronts is severed
    /// from the parameter plane (their flows are cancelled and they
    /// stall, keeping local state) until the aggregator returns. Only
    /// meaningful in a hierarchical run (`aggregators > 0`); engines
    /// reject the window otherwise.
    AggregatorOutage(usize),
}

/// A half-open interval `[start, end)` of virtual time during which a
/// [`FaultKind`] is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// What is down.
    pub kind: FaultKind,
    /// Virtual time at which the fault begins (seconds, inclusive).
    pub start: Time,
    /// Virtual time at which the fault ends (seconds, exclusive).
    pub end: Time,
}

impl FaultWindow {
    /// Window length in virtual seconds.
    #[must_use]
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

/// A scripted packet-loss window: extra i.i.d. chunk-loss probability
/// `rate` on one worker's link during `[start, end)`.
///
/// Unlike [`FaultWindow`]s, loss windows do not compile into point
/// events on the [`FaultClock`] — the engines fold them into the
/// channel's loss model, which consults them continuously. They are
/// kept separate from [`FaultKind`] because they carry a real-valued
/// rate rather than an on/off state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossWindow {
    /// The worker whose link loses packets.
    pub link: usize,
    /// Virtual time at which the loss begins (seconds, inclusive).
    pub start: Time,
    /// Virtual time at which the loss ends (seconds, exclusive).
    pub end: Time,
    /// Added chunk-loss probability in `[0, 1]`.
    pub rate: f64,
}

/// Error produced when building or parsing an invalid plan.
///
/// Errors raised while parsing a script carry the 1-based line number
/// and the offending line's original text ([`FaultPlanError::line`] /
/// [`FaultPlanError::line_text`]), so tools that emit scripts — the
/// fuzz shrinker in particular — can point at the exact line that
/// failed. Builder-path errors carry no location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    msg: String,
    line: Option<u32>,
    line_text: Option<String>,
}

impl FaultPlanError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            line: None,
            line_text: None,
        }
    }

    /// Attaches the 1-based script line number and its original text.
    pub(crate) fn with_line(mut self, line: usize, text: &str) -> Self {
        self.line = Some(line as u32);
        self.line_text = Some(text.to_owned());
        self
    }

    /// The 1-based script line this error points at, when the error
    /// came from [`FaultPlan::parse`] / [`FaultPlan::parse_with_warnings`].
    #[must_use]
    pub fn line(&self) -> Option<u32> {
        self.line
    }

    /// The offending script line's original text (comments included),
    /// when the error came from a script parse.
    #[must_use]
    pub fn line_text(&self) -> Option<&str> {
        self.line_text.as_deref()
    }

    /// The bare error message, without the "invalid fault plan" /
    /// line-location framing.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.line, self.line_text.as_deref()) {
            (Some(n), Some(text)) => {
                write!(f, "invalid fault plan: line {n}: {} (`{text}`)", self.msg)
            }
            (Some(n), None) => write!(f, "invalid fault plan: line {n}: {}", self.msg),
            _ => write!(f, "invalid fault plan: {}", self.msg),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Parameters for [`FaultPlan::seeded_churn`]: exponential up/down
/// intervals with floors, mirroring intermittent-connectivity traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnProfile {
    /// Mean online interval between departures (seconds).
    pub mean_up_secs: f64,
    /// Mean offline interval per departure (seconds).
    pub mean_down_secs: f64,
    /// Minimum online interval (floors the exponential draw).
    pub min_up_secs: f64,
    /// Minimum offline interval (floors the exponential draw).
    pub min_down_secs: f64,
    /// Keep worker 0 always online as a stable anchor (so the cluster
    /// never empties and a rejoiner always has a resync source).
    pub keep_first_online: bool,
}

impl Default for ChurnProfile {
    fn default() -> Self {
        Self {
            mean_up_secs: 120.0,
            mean_down_secs: 25.0,
            min_up_secs: 20.0,
            min_down_secs: 5.0,
            keep_first_online: true,
        }
    }
}

/// A validated, ordered collection of [`FaultWindow`]s.
///
/// Windows of the same kind (same worker for per-worker kinds) must not
/// overlap; windows of different kinds may. The empty plan is the
/// explicit "no faults" value and is guaranteed zero-cost when wired
/// into an engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
    loss_windows: Vec<LossWindow>,
}

impl FaultPlan {
    /// The empty plan (no faults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan holds no windows at all (fault or loss).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.loss_windows.is_empty()
    }

    /// The validated windows, in insertion order.
    #[must_use]
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The validated packet-loss windows, in insertion order.
    #[must_use]
    pub fn loss_windows(&self) -> &[LossWindow] {
        &self.loss_windows
    }

    /// Largest worker index referenced by any per-worker window —
    /// fault or loss — if any. Engines validate this against the
    /// configured cluster size.
    #[must_use]
    pub fn max_worker(&self) -> Option<usize> {
        self.windows
            .iter()
            .filter_map(|w| match w.kind {
                FaultKind::WorkerOffline(i) | FaultKind::LinkBlackout(i) => Some(i),
                FaultKind::ServerOutage(_) | FaultKind::AggregatorOutage(_) => None,
            })
            .chain(self.loss_windows.iter().map(|w| w.link))
            .max()
    }

    /// Largest server shard referenced by any outage window, if any.
    /// Engines validate this against the configured shard count.
    #[must_use]
    pub fn max_shard(&self) -> Option<usize> {
        self.windows
            .iter()
            .filter_map(|w| match w.kind {
                FaultKind::ServerOutage(s) => Some(s),
                _ => None,
            })
            .max()
    }

    /// Largest aggregator referenced by any aggregator-outage window,
    /// if any. Engines validate this against the configured aggregator
    /// count (and reject any such window in a flat run).
    #[must_use]
    pub fn max_aggregator(&self) -> Option<usize> {
        self.windows
            .iter()
            .filter_map(|w| match w.kind {
                FaultKind::AggregatorOutage(a) => Some(a),
                _ => None,
            })
            .max()
    }

    /// Adds a worker-offline window (builder style).
    ///
    /// # Panics
    ///
    /// Panics on a non-finite, negative, empty, or overlapping window.
    #[must_use]
    pub fn worker_offline(mut self, worker: usize, start: Time, end: Time) -> Self {
        self.try_push(FaultWindow {
            kind: FaultKind::WorkerOffline(worker),
            start,
            end,
        })
        .expect("valid worker-offline window");
        self
    }

    /// Adds a link-blackout window (builder style).
    ///
    /// # Panics
    ///
    /// Panics on a non-finite, negative, empty, or overlapping window.
    #[must_use]
    pub fn link_blackout(mut self, worker: usize, start: Time, end: Time) -> Self {
        self.try_push(FaultWindow {
            kind: FaultKind::LinkBlackout(worker),
            start,
            end,
        })
        .expect("valid link-blackout window");
        self
    }

    /// Adds a server-outage window on shard 0 (builder style). Shard 0
    /// is the whole server in an unsharded run.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite, negative, empty, or overlapping window.
    #[must_use]
    pub fn server_restart(self, start: Time, end: Time) -> Self {
        self.server_restart_on(0, start, end)
    }

    /// Adds a server-outage window on a specific shard (builder style).
    /// Windows on different shards may overlap freely.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite, negative, empty, or overlapping window.
    #[must_use]
    pub fn server_restart_on(mut self, shard: usize, start: Time, end: Time) -> Self {
        self.try_push(FaultWindow {
            kind: FaultKind::ServerOutage(shard),
            start,
            end,
        })
        .expect("valid server-outage window");
        self
    }

    /// Adds an aggregator-outage window (builder style): edge
    /// aggregator `a` and every worker it fronts are severed during
    /// `[start, end)`. Windows on different aggregators may overlap.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite, negative, empty, or overlapping window.
    #[must_use]
    pub fn aggregator_outage(mut self, aggregator: usize, start: Time, end: Time) -> Self {
        self.try_push(FaultWindow {
            kind: FaultKind::AggregatorOutage(aggregator),
            start,
            end,
        })
        .expect("valid aggregator-outage window");
        self
    }

    /// Adds a packet-loss window (builder style): extra chunk-loss
    /// probability `rate` on `link` during `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite, negative, empty, or overlapping window,
    /// or a rate outside `[0, 1]`.
    #[must_use]
    pub fn link_loss(mut self, link: usize, start: Time, end: Time, rate: f64) -> Self {
        self.try_push_loss(LossWindow {
            link,
            start,
            end,
            rate,
        })
        .expect("valid link-loss window");
        self
    }

    /// Validates and appends a packet-loss window.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or negative times, empty windows, rates
    /// outside `[0, 1]`, and windows overlapping an existing loss
    /// window on the same link.
    pub fn try_push_loss(&mut self, w: LossWindow) -> Result<(), FaultPlanError> {
        if !w.start.is_finite() || !w.end.is_finite() {
            return Err(FaultPlanError::new(format!(
                "non-finite loss window [{}, {})",
                w.start, w.end
            )));
        }
        if w.start < 0.0 {
            return Err(FaultPlanError::new(format!(
                "loss window starts before t=0 ({})",
                w.start
            )));
        }
        if w.end <= w.start {
            return Err(FaultPlanError::new(format!(
                "empty or inverted loss window [{}, {})",
                w.start, w.end
            )));
        }
        if !w.rate.is_finite() || !(0.0..=1.0).contains(&w.rate) {
            return Err(FaultPlanError::new(format!(
                "loss rate out of [0, 1]: {}",
                w.rate
            )));
        }
        for e in &self.loss_windows {
            if e.link == w.link && w.start < e.end && e.start < w.end {
                return Err(FaultPlanError::new(format!(
                    "loss window [{}, {}) overlaps [{}, {}) on link {}",
                    w.start, w.end, e.start, e.end, w.link
                )));
            }
        }
        self.loss_windows.push(w);
        Ok(())
    }

    /// Validates and appends a window.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or negative times, empty windows, and windows
    /// overlapping an existing window of the same kind.
    pub fn try_push(&mut self, w: FaultWindow) -> Result<(), FaultPlanError> {
        if !w.start.is_finite() || !w.end.is_finite() {
            return Err(FaultPlanError::new(format!(
                "non-finite window [{}, {})",
                w.start, w.end
            )));
        }
        if w.start < 0.0 {
            return Err(FaultPlanError::new(format!(
                "window starts before t=0 ({})",
                w.start
            )));
        }
        if w.end <= w.start {
            return Err(FaultPlanError::new(format!(
                "empty or inverted window [{}, {})",
                w.start, w.end
            )));
        }
        for e in &self.windows {
            if e.kind == w.kind && w.start < e.end && e.start < w.end {
                return Err(FaultPlanError::new(format!(
                    "window [{}, {}) overlaps [{}, {}) of the same kind {:?}",
                    w.start, w.end, e.start, e.end, w.kind
                )));
            }
        }
        self.windows.push(w);
        Ok(())
    }

    /// Generates a reproducible churn plan: every worker (except worker
    /// 0 when `profile.keep_first_online`) alternates exponential online
    /// and offline intervals until `duration_secs`. Each worker draws
    /// from its own forked RNG stream, so the plan for worker `w` does
    /// not change when other workers are added or removed.
    #[must_use]
    pub fn seeded_churn(
        seed: u64,
        n_workers: usize,
        duration_secs: f64,
        profile: &ChurnProfile,
    ) -> Self {
        let root = DetRng::new(seed);
        let mut plan = Self::new();
        for w in 0..n_workers {
            if profile.keep_first_online && w == 0 {
                continue;
            }
            let mut rng = root.fork(0x8000 + w as u64);
            // Exponential draw via inversion; DetRng::uniform is in
            // [0, 1) so 1 - u is in (0, 1] and the log is finite.
            let mut exp = move |mean: f64| -mean * (1.0 - rng.uniform()).ln();
            let mut t = exp(profile.mean_up_secs).max(profile.min_up_secs);
            while t < duration_secs {
                let down = exp(profile.mean_down_secs).max(profile.min_down_secs);
                plan = plan.worker_offline(w, t, t + down);
                t += down + exp(profile.mean_up_secs).max(profile.min_up_secs);
            }
        }
        plan
    }

    /// Compiles the plan into a sorted point-event clock.
    ///
    /// Events at the same instant are ordered recoveries-first (a
    /// worker coming back at `t` is processed before another going down
    /// at `t`), then by kind, then by worker index — a total order, so
    /// the schedule is deterministic regardless of insertion order.
    #[must_use]
    pub fn schedule(&self) -> FaultClock {
        let mut events: Vec<(Time, FaultEvent)> = Vec::with_capacity(self.windows.len() * 2);
        for w in &self.windows {
            let (down, up) = match w.kind {
                FaultKind::WorkerOffline(i) => (FaultEvent::WorkerDown(i), FaultEvent::WorkerUp(i)),
                FaultKind::LinkBlackout(i) => {
                    (FaultEvent::BlackoutStart(i), FaultEvent::BlackoutEnd(i))
                }
                FaultKind::ServerOutage(s) => (FaultEvent::ServerDown(s), FaultEvent::ServerUp(s)),
                FaultKind::AggregatorOutage(a) => {
                    (FaultEvent::AggregatorDown(a), FaultEvent::AggregatorUp(a))
                }
            };
            events.push((w.start, down));
            events.push((w.end, up));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("windows validated finite")
                .then_with(|| a.1.rank().cmp(&b.1.rank()))
        });
        FaultClock::from_events(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_schedules_nothing() {
        let clock = FaultPlan::new().schedule();
        assert!(clock.next_time().is_none());
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new().max_worker(), None);
    }

    #[test]
    fn builder_windows_become_paired_events_in_time_order() {
        let plan = FaultPlan::new()
            .worker_offline(2, 40.0, 80.0)
            .link_blackout(0, 10.0, 20.0)
            .server_restart(50.0, 55.0);
        assert_eq!(plan.windows().len(), 3);
        assert_eq!(plan.max_worker(), Some(2));
        let mut clock = plan.schedule();
        let mut seen = Vec::new();
        while let Some(t) = clock.next_time() {
            for e in clock.pop_due(t) {
                seen.push((t, e));
            }
        }
        assert_eq!(
            seen,
            vec![
                (10.0, FaultEvent::BlackoutStart(0)),
                (20.0, FaultEvent::BlackoutEnd(0)),
                (40.0, FaultEvent::WorkerDown(2)),
                (50.0, FaultEvent::ServerDown(0)),
                (55.0, FaultEvent::ServerUp(0)),
                (80.0, FaultEvent::WorkerUp(2)),
            ]
        );
    }

    #[test]
    fn recoveries_sort_before_failures_at_the_same_instant() {
        let plan = FaultPlan::new()
            .worker_offline(1, 10.0, 20.0)
            .worker_offline(2, 20.0, 30.0);
        let mut clock = plan.schedule();
        clock.pop_due(10.0);
        assert_eq!(
            clock.pop_due(20.0),
            vec![FaultEvent::WorkerUp(1), FaultEvent::WorkerDown(2)]
        );
    }

    #[test]
    fn overlap_of_same_kind_is_rejected() {
        let mut plan = FaultPlan::new().worker_offline(1, 10.0, 20.0);
        let overlapping = FaultWindow {
            kind: FaultKind::WorkerOffline(1),
            start: 15.0,
            end: 25.0,
        };
        assert!(plan.try_push(overlapping).is_err());
        // Different worker, same interval: fine.
        let other = FaultWindow {
            kind: FaultKind::WorkerOffline(2),
            start: 15.0,
            end: 25.0,
        };
        assert!(plan.try_push(other).is_ok());
        // Touching windows (end == start) do not overlap.
        let touching = FaultWindow {
            kind: FaultKind::WorkerOffline(1),
            start: 20.0,
            end: 22.0,
        };
        assert!(plan.try_push(touching).is_ok());
    }

    #[test]
    fn invalid_windows_are_rejected() {
        let mut plan = FaultPlan::new();
        for (start, end) in [
            (f64::NAN, 1.0),
            (0.0, f64::INFINITY),
            (-1.0, 1.0),
            (5.0, 5.0),
            (5.0, 4.0),
        ] {
            let w = FaultWindow {
                kind: FaultKind::ServerOutage(0),
                start,
                end,
            };
            assert!(plan.try_push(w).is_err(), "[{start}, {end}) accepted");
        }
        assert!(plan.is_empty());
    }

    #[test]
    fn outages_on_different_shards_may_overlap() {
        let plan = FaultPlan::new()
            .server_restart_on(0, 10.0, 30.0)
            .server_restart_on(1, 20.0, 40.0);
        assert_eq!(plan.max_shard(), Some(1));
        assert_eq!(plan.max_worker(), None, "shards are not workers");
        let mut clock = plan.schedule();
        assert_eq!(clock.pop_due(10.0), vec![FaultEvent::ServerDown(0)]);
        assert_eq!(clock.pop_due(20.0), vec![FaultEvent::ServerDown(1)]);
        assert_eq!(clock.pop_due(30.0), vec![FaultEvent::ServerUp(0)]);
        assert_eq!(clock.pop_due(40.0), vec![FaultEvent::ServerUp(1)]);
        // Same shard, overlapping: rejected like any same-kind overlap.
        let mut bad = FaultPlan::new().server_restart_on(0, 10.0, 30.0);
        assert!(bad
            .try_push(FaultWindow {
                kind: FaultKind::ServerOutage(0),
                start: 15.0,
                end: 35.0,
            })
            .is_err());
    }

    #[test]
    fn seeded_churn_is_deterministic_and_respects_floors() {
        let p = ChurnProfile::default();
        let a = FaultPlan::seeded_churn(7, 4, 600.0, &p);
        let b = FaultPlan::seeded_churn(7, 4, 600.0, &p);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "600 s at mean-up 120 s should churn");
        for w in a.windows() {
            assert!(w.duration() >= p.min_down_secs - 1e-12);
            assert!(w.start >= p.min_up_secs - 1e-12);
            assert!(matches!(w.kind, FaultKind::WorkerOffline(i) if i != 0 && i < 4));
        }
        let c = FaultPlan::seeded_churn(8, 4, 600.0, &p);
        assert_ne!(a, c, "different seed must give a different plan");
    }

    #[test]
    fn seeded_churn_streams_are_stable_under_cluster_growth() {
        let p = ChurnProfile::default();
        let small = FaultPlan::seeded_churn(7, 3, 600.0, &p);
        let large = FaultPlan::seeded_churn(7, 5, 600.0, &p);
        let of = |plan: &FaultPlan, worker: usize| -> Vec<FaultWindow> {
            plan.windows()
                .iter()
                .copied()
                .filter(|w| w.kind == FaultKind::WorkerOffline(worker))
                .collect()
        };
        for w in 1..3 {
            assert_eq!(of(&small, w), of(&large, w));
        }
    }

    #[test]
    fn loss_windows_validate_and_count_toward_plan_shape() {
        let plan = FaultPlan::new().link_loss(2, 10.0, 30.0, 0.25);
        assert!(!plan.is_empty());
        assert_eq!(plan.max_worker(), Some(2));
        assert_eq!(plan.loss_windows().len(), 1);
        assert!(plan.windows().is_empty());
        // Loss windows schedule no clock events.
        assert!(plan.schedule().next_time().is_none());
    }

    #[test]
    fn loss_window_overlap_and_bad_rates_are_rejected() {
        let mut plan = FaultPlan::new().link_loss(1, 10.0, 20.0, 0.5);
        let overlapping = LossWindow {
            link: 1,
            start: 15.0,
            end: 25.0,
            rate: 0.1,
        };
        assert!(plan.try_push_loss(overlapping).is_err());
        // Same span on another link is fine, as is a touching window.
        let other_link = LossWindow {
            link: 2,
            ..overlapping
        };
        assert!(plan.try_push_loss(other_link).is_ok());
        let touching = LossWindow {
            link: 1,
            start: 20.0,
            end: 22.0,
            rate: 1.0,
        };
        assert!(plan.try_push_loss(touching).is_ok());
        for rate in [-0.1, 1.1, f64::NAN] {
            let w = LossWindow {
                link: 0,
                start: 0.0,
                end: 1.0,
                rate,
            };
            assert!(plan.try_push_loss(w).is_err(), "rate {rate} accepted");
        }
        for (start, end) in [(f64::NAN, 1.0), (-1.0, 1.0), (5.0, 5.0)] {
            let w = LossWindow {
                link: 0,
                start,
                end,
                rate: 0.5,
            };
            assert!(plan.try_push_loss(w).is_err(), "[{start}, {end}) accepted");
        }
    }

    #[test]
    fn keep_first_online_false_churns_worker_zero() {
        let p = ChurnProfile {
            keep_first_online: false,
            mean_up_secs: 30.0,
            ..ChurnProfile::default()
        };
        let plan = FaultPlan::seeded_churn(3, 2, 2000.0, &p);
        assert!(plan
            .windows()
            .iter()
            .any(|w| w.kind == FaultKind::WorkerOffline(0)));
    }
}
