//! Per-state power model and energy integration (paper Sec. II-C,
//! Table III).
//!
//! The paper measures whole-board power (CPU + GPU + memory + wireless
//! card, via jtop) in three states and finds stalling robots still burn
//! ~30 % of compute power — they cannot sleep because they must react
//! promptly to parameter-server messages, and static leakage keeps chips
//! warm. Table III:
//!
//! | state | computation | communication | stall |
//! |---|---|---|---|
//! | power (W) | 13.35 | 4.25 | 4.04 |
//!
//! Energy here is exactly what the paper computes: state-specific power
//! integrated over each device's state timeline.
//!
//! # Example
//!
//! ```
//! use rog_energy::PowerModel;
//! use rog_sim::{DeviceState, Timeline};
//!
//! let mut tl = Timeline::new();
//! tl.set_state(0.0, DeviceState::Compute);
//! tl.set_state(2.0, DeviceState::Stall);
//! tl.close(3.0);
//! let j = PowerModel::jetson_nx().energy_joules(&tl);
//! assert!((j - (2.0 * 13.35 + 1.0 * 4.04)).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rog_sim::{DeviceState, Time, Timeline};

/// Power draw per device state, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Power while computing gradients (includes (de)compression).
    pub compute_w: f64,
    /// Power while transmitting/receiving.
    pub communicate_w: f64,
    /// Power while stalled at a synchronization gate.
    pub stall_w: f64,
    /// Power while idle (before start / after finish).
    pub idle_w: f64,
}

impl PowerModel {
    /// Table III measurements on the NVIDIA Jetson Xavier NX.
    pub fn jetson_nx() -> Self {
        Self {
            compute_w: 13.35,
            communicate_w: 4.25,
            stall_w: 4.04,
            idle_w: 4.04,
        }
    }

    /// Power in a given state.
    pub fn power_in(&self, state: DeviceState) -> f64 {
        match state {
            DeviceState::Compute => self.compute_w,
            DeviceState::Communicate => self.communicate_w,
            DeviceState::Stall => self.stall_w,
            DeviceState::Idle => self.idle_w,
            // A powered-off / out-of-range device draws nothing from its
            // battery budget while absent.
            DeviceState::Offline => 0.0,
        }
    }

    /// Energy in joules of a closed timeline.
    pub fn energy_joules(&self, timeline: &Timeline) -> f64 {
        DeviceState::ALL
            .iter()
            .map(|&s| self.power_in(s) * timeline.time_in(s))
            .sum()
    }

    /// Energy in joules spent within the window `[t0, t1)`.
    pub fn energy_joules_between(&self, timeline: &Timeline, t0: Time, t1: Time) -> f64 {
        DeviceState::ALL
            .iter()
            .map(|&s| self.power_in(s) * timeline.time_in_between(s, t0, t1))
            .sum()
    }

    /// Total energy of a cluster of timelines up to `t`.
    pub fn cluster_energy_until(&self, timelines: &[Timeline], t: Time) -> f64 {
        timelines
            .iter()
            .map(|tl| self.energy_joules_between(tl, 0.0, t))
            .sum()
    }
}

/// A robot battery: finite energy budget drained by the power model.
///
/// The paper motivates ROG with battery preservation ("wastes energy
/// stalling", Sec. I); this helper turns per-state power into mission
/// endurance — how long a robot can keep training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Usable capacity in joules (e.g. a 4S 5000 mAh pack ≈ 266 kJ).
    pub capacity_j: f64,
}

impl Battery {
    /// A typical four-wheel-robot pack (14.8 V × 5 Ah ≈ 266 kJ).
    pub fn robot_pack() -> Self {
        Self {
            capacity_j: 266_000.0,
        }
    }

    /// Remaining energy after running `timeline` from a full charge
    /// (clamped at zero).
    pub fn remaining_after(&self, model: &PowerModel, timeline: &Timeline) -> f64 {
        (self.capacity_j - model.energy_joules(timeline)).max(0.0)
    }

    /// Seconds of training endurance under a steady per-iteration
    /// composition: `capacity / mean_power`, where mean power is the
    /// state-weighted average over one iteration.
    ///
    /// # Panics
    ///
    /// Panics if the composition durations are all zero.
    pub fn endurance_secs(
        &self,
        model: &PowerModel,
        compute_s: f64,
        communicate_s: f64,
        stall_s: f64,
    ) -> f64 {
        let total = compute_s + communicate_s + stall_s;
        assert!(total > 0.0, "iteration has zero duration");
        let energy_per_iter = compute_s * model.compute_w
            + communicate_s * model.communicate_w
            + stall_s * model.stall_w;
        self.capacity_j / energy_per_iter * total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spanned(state: DeviceState, secs: f64) -> Timeline {
        let mut tl = Timeline::new();
        tl.set_state(0.0, state);
        tl.close(secs);
        tl
    }

    #[test]
    fn table3_stall_is_about_30_percent_of_compute() {
        let m = PowerModel::jetson_nx();
        let ratio = m.stall_w / m.compute_w;
        assert!((0.25..0.35).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn energy_is_power_times_time_per_state() {
        let m = PowerModel::jetson_nx();
        assert!((m.energy_joules(&spanned(DeviceState::Compute, 10.0)) - 133.5).abs() < 1e-9);
        assert!((m.energy_joules(&spanned(DeviceState::Communicate, 2.0)) - 8.5).abs() < 1e-9);
    }

    #[test]
    fn windowed_energy_clips() {
        let m = PowerModel::jetson_nx();
        let tl = spanned(DeviceState::Compute, 10.0);
        let half = m.energy_joules_between(&tl, 0.0, 5.0);
        assert!((half - 66.75).abs() < 1e-9);
    }

    #[test]
    fn cluster_energy_sums_devices() {
        let m = PowerModel::jetson_nx();
        let tls = vec![
            spanned(DeviceState::Stall, 1.0),
            spanned(DeviceState::Stall, 1.0),
        ];
        assert!((m.cluster_energy_until(&tls, 10.0) - 2.0 * 4.04).abs() < 1e-9);
    }

    #[test]
    fn battery_endurance_rewards_less_stall() {
        let m = PowerModel::jetson_nx();
        let b = Battery::robot_pack();
        // Same compute/comm, one with 5 s of stall per iteration.
        let lean = b.endurance_secs(&m, 2.2, 1.5, 0.5);
        let stalled = b.endurance_secs(&m, 2.2, 1.5, 5.0);
        // Stall power is low, so endurance *in seconds* is actually
        // longer when idling — but endurance in *iterations* (useful
        // work per battery) is what matters, and stall destroys it:
        assert!(stalled > lean, "{stalled} vs {lean}");
        let iters_lean = lean / (2.2 + 1.5 + 0.5);
        let iters_stalled = stalled / (2.2 + 1.5 + 5.0);
        assert!(
            iters_lean > 1.4 * iters_stalled,
            "{iters_lean} vs {iters_stalled}"
        );
    }

    #[test]
    fn battery_drains_and_clamps() {
        let m = PowerModel::jetson_nx();
        let b = Battery { capacity_j: 100.0 };
        let tl = spanned(DeviceState::Compute, 5.0); // 66.75 J
        assert!((b.remaining_after(&m, &tl) - 33.25).abs() < 1e-9);
        let tl = spanned(DeviceState::Compute, 50.0);
        assert_eq!(b.remaining_after(&m, &tl), 0.0);
    }

    #[test]
    fn mixed_timeline_integrates_all_states() {
        let m = PowerModel::jetson_nx();
        let mut tl = Timeline::new();
        tl.set_state(0.0, DeviceState::Compute); // 2 s
        tl.set_state(2.0, DeviceState::Communicate); // 1 s
        tl.set_state(3.0, DeviceState::Stall); // 0.5 s
        tl.set_state(3.5, DeviceState::Idle); // 0.5 s
        tl.close(4.0);
        let want = 2.0 * 13.35 + 4.25 + 0.5 * 4.04 + 0.5 * 4.04;
        assert!((m.energy_joules(&tl) - want).abs() < 1e-9);
    }

    #[test]
    fn offline_time_is_free() {
        let m = PowerModel::jetson_nx();
        assert_eq!(m.power_in(DeviceState::Offline), 0.0);
        let mut tl = Timeline::new();
        tl.set_state(0.0, DeviceState::Compute); // 1 s
        tl.set_state(1.0, DeviceState::Offline); // 3 s, free
        tl.close(4.0);
        assert!((m.energy_joules(&tl) - 13.35).abs() < 1e-9);
    }
}
