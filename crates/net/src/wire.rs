//! Wire format: framing accounting and the checksummed message codec.
//!
//! Sec. V: a speculative transmission can be cut mid-row, so the stream is
//! wrapped "with several unique bytes at both the beginning and the
//! ending" letting the receiver skip fragments. Sec. III-A: adaptively
//! transmitted rows must carry their index so they can be scattered back
//! into the model — the management overhead that rules out
//! element-granularity scheduling. These constants make both overheads
//! visible to the channel byte accounting.
//!
//! On lossy links the framing also has to *detect* damage, so the
//! concrete byte layout is a CRC32-checksummed, sequence-numbered frame
//! whose overhead is exactly the constants above (the traffic volumes
//! the channel integrates are unchanged by the codec):
//!
//! ```text
//! offset size  field
//!      0    4  start marker  b"ROG\x02"        ┐ FRAME_START_BYTES (8)
//!      4    4  sequence number (u32 LE)        ┘
//!      8    1  delivery class (0 reliable, 1 best-effort) ┐
//!      9    1  transmission attempt                        │ MESSAGE_
//!     10    2  flags (reserved, zero)                      │ HEADER_
//!     12    4  payload length (u32 LE)                     │ BYTES (16)
//!     16    8  iteration number (u64 LE)                   ┘
//!     24    n  payload
//!   24+n    4  CRC32 (IEEE) over bytes [4, 24+n)  ┐ FRAME_END_BYTES (8)
//!   28+n    4  end marker    b"\x03GOR"           ┘
//! ```

/// Unique marker bytes at the start of a framed transmission.
pub const FRAME_START_BYTES: u64 = 8;

/// Unique marker bytes at the end of a framed transmission.
pub const FRAME_END_BYTES: u64 = 8;

/// Fixed per-message header: iteration number + row count + MTA-time
/// report (Sec. IV-B: stragglers report their MTA time to other devices).
pub const MESSAGE_HEADER_BYTES: u64 = 16;

/// Per-row index header (`int32`, the PyTorch default the paper cites).
pub const ROW_INDEX_BYTES: u64 = 4;

/// Total framing overhead of one message, excluding per-row headers.
pub const fn message_overhead() -> u64 {
    FRAME_START_BYTES + FRAME_END_BYTES + MESSAGE_HEADER_BYTES
}

/// Size on the wire of one row whose payload is `payload_bytes`.
pub const fn framed_row_bytes(payload_bytes: u64) -> u64 {
    ROW_INDEX_BYTES + payload_bytes
}

/// Start-of-frame marker.
const START_MARKER: [u8; 4] = *b"ROG\x02";
/// End-of-frame marker.
const END_MARKER: [u8; 4] = *b"\x03GOR";

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `data`.
///
/// Hand-rolled bitwise implementation — the codec runs on control-path
/// message sizes, and the workspace vendors no checksum crate.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Which reliability class a frame travels under (see
/// [`crate::reliability`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameClass {
    /// Ack + retransmit until delivered exactly once, in order.
    Reliable,
    /// Detect-and-drop: damage is reported upward, never retransmitted
    /// by the transport.
    BestEffort,
}

impl FrameClass {
    fn to_byte(self) -> u8 {
        match self {
            FrameClass::Reliable => 0,
            FrameClass::BestEffort => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(FrameClass::Reliable),
            1 => Some(FrameClass::BestEffort),
            _ => None,
        }
    }
}

/// Decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Per-sender sequence number (dedup + ordering key).
    pub seq: u32,
    /// Delivery class.
    pub class: FrameClass,
    /// Transmission attempt, starting at 1 (diagnostics only).
    pub attempt: u8,
    /// Training iteration the payload belongs to.
    pub iter: u64,
}

/// A decoded frame: header plus owned payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Header fields.
    pub header: FrameHeader,
    /// Verbatim payload bytes.
    pub payload: Vec<u8>,
}

/// Why a byte buffer failed to decode as a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer shorter than the fixed framing overhead.
    Truncated,
    /// Start marker missing or damaged.
    BadStartMarker,
    /// End marker missing or damaged.
    BadEndMarker,
    /// Header length field disagrees with the buffer size.
    LengthMismatch,
    /// Unknown delivery-class byte.
    BadClass,
    /// CRC32 over header+payload failed — the payload is damaged.
    ChecksumMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FrameError::Truncated => "frame shorter than fixed overhead",
            FrameError::BadStartMarker => "bad start marker",
            FrameError::BadEndMarker => "bad end marker",
            FrameError::LengthMismatch => "length field mismatch",
            FrameError::BadClass => "unknown delivery class",
            FrameError::ChecksumMismatch => "CRC32 mismatch",
        };
        f.write_str(s)
    }
}

/// Encodes one frame. The output length is exactly
/// `message_overhead() + payload.len()`.
pub fn encode_frame(header: &FrameHeader, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(message_overhead() as usize + payload.len());
    out.extend_from_slice(&START_MARKER);
    out.extend_from_slice(&header.seq.to_le_bytes());
    out.push(header.class.to_byte());
    out.push(header.attempt);
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&header.iter.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&END_MARKER);
    out
}

/// Decodes and verifies a frame produced by [`encode_frame`].
///
/// Total function: every possible byte string — truncated, corrupted,
/// random, adversarial — returns a typed [`FrameError`] rather than
/// panicking (property-tested below). Safe to feed raw datagrams from
/// an untrusted network.
pub fn decode_frame(buf: &[u8]) -> Result<Frame, FrameError> {
    let overhead = message_overhead() as usize;
    if buf.len() < overhead {
        return Err(FrameError::Truncated);
    }
    if buf[..4] != START_MARKER {
        return Err(FrameError::BadStartMarker);
    }
    if buf[buf.len() - 4..] != END_MARKER {
        return Err(FrameError::BadEndMarker);
    }
    let len = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as usize;
    // `overhead + len` cannot wrap on 64-bit hosts (len <= u32::MAX),
    // but a checked add keeps the decoder total on 32-bit targets too.
    if overhead
        .checked_add(len)
        .is_none_or(|want| buf.len() != want)
    {
        return Err(FrameError::LengthMismatch);
    }
    let body_end = buf.len() - 8;
    let crc_stored = u32::from_le_bytes(buf[body_end..body_end + 4].try_into().expect("4 bytes"));
    if crc32(&buf[4..body_end]) != crc_stored {
        return Err(FrameError::ChecksumMismatch);
    }
    let class = FrameClass::from_byte(buf[8]).ok_or(FrameError::BadClass)?;
    Ok(Frame {
        header: FrameHeader {
            seq: u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")),
            class,
            attempt: buf[9],
            iter: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
        },
        payload: buf[24..body_end].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_small_but_nonzero() {
        assert!(message_overhead() >= 16);
        assert_eq!(framed_row_bytes(100), 104);
    }

    fn sample_header() -> FrameHeader {
        FrameHeader {
            seq: 0xDEAD_BEEF,
            class: FrameClass::BestEffort,
            attempt: 3,
            iter: 123_456_789_012,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frame_roundtrips() {
        let payload = b"row 17 one-bit signs".to_vec();
        let buf = encode_frame(&sample_header(), &payload);
        assert_eq!(buf.len() as u64, message_overhead() + payload.len() as u64);
        let frame = decode_frame(&buf).expect("decodes");
        assert_eq!(frame.header, sample_header());
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let hdr = FrameHeader {
            seq: 0,
            class: FrameClass::Reliable,
            attempt: 1,
            iter: 0,
        };
        let buf = encode_frame(&hdr, &[]);
        assert_eq!(buf.len() as u64, message_overhead());
        assert_eq!(decode_frame(&buf).expect("decodes").header, hdr);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let buf = encode_frame(&sample_header(), b"payload under test");
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut dam = buf.clone();
                dam[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&dam).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_header() -> impl Strategy<Value = (u32, bool, u8, u64)> {
            (
                0u32..u32::MAX,
                proptest::bool::ANY,
                0u8..=255,
                0u64..u64::MAX,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The decoder is total: arbitrary bytes never panic, they
            /// produce a typed error (no random buffer can carry a
            /// valid CRC32 and both markers by chance at these sizes).
            #[test]
            fn random_bytes_never_panic(
                buf in proptest::collection::vec(0u8..=255, 0..256),
            ) {
                let _ = decode_frame(&buf);
            }

            /// Any encoded frame round-trips through decode.
            #[test]
            fn arbitrary_frames_roundtrip(
                hdr_parts in arb_header(),
                payload in proptest::collection::vec(0u8..=255, 0..128),
            ) {
                let (seq, be, attempt, iter) = hdr_parts;
                let hdr = FrameHeader {
                    seq,
                    class: if be { FrameClass::BestEffort } else { FrameClass::Reliable },
                    attempt,
                    iter,
                };
                let buf = encode_frame(&hdr, &payload);
                let frame = decode_frame(&buf).expect("own encoding decodes");
                prop_assert_eq!(frame.header, hdr);
                prop_assert_eq!(frame.payload, payload);
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Mutating any byte of a valid frame is detected: decode
            /// returns an error, never a wrong frame and never a panic.
            #[test]
            fn mutated_frames_error_without_panicking(
                hdr_parts in arb_header(),
                payload in proptest::collection::vec(0u8..=255, 0..64),
                pos in 0usize..4096,
                xor in 1u8..=255,
            ) {
                let (seq, be, attempt, iter) = hdr_parts;
                let hdr = FrameHeader {
                    seq,
                    class: if be { FrameClass::BestEffort } else { FrameClass::Reliable },
                    attempt,
                    iter,
                };
                let mut buf = encode_frame(&hdr, &payload);
                let pos = pos % buf.len();
                buf[pos] ^= xor;
                prop_assert!(decode_frame(&buf).is_err(), "mutation at {} undetected", pos);
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Truncating a valid frame anywhere is rejected, not a panic.
            #[test]
            fn truncated_frames_error(
                payload in proptest::collection::vec(0u8..=255, 0..64),
                cut in 0usize..4096,
            ) {
                let hdr = FrameHeader {
                    seq: 7,
                    class: FrameClass::BestEffort,
                    attempt: 1,
                    iter: 3,
                };
                let buf = encode_frame(&hdr, &payload);
                let cut = cut % buf.len();
                prop_assert!(decode_frame(&buf[..cut]).is_err());
            }
        }
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let buf = encode_frame(&sample_header(), b"abc");
        assert_eq!(decode_frame(&buf[..10]), Err(FrameError::Truncated));
        // Dropping the tail byte shears the end marker first.
        assert_eq!(
            decode_frame(&buf[..buf.len() - 1]),
            Err(FrameError::BadEndMarker)
        );
        // A surviving end marker with missing payload bytes trips the
        // length check.
        let mut short = buf[..buf.len() - 1].to_vec();
        let n = short.len();
        short[n - 4..].copy_from_slice(&END_MARKER);
        assert_eq!(decode_frame(&short), Err(FrameError::LengthMismatch));
        let mut no_start = buf.clone();
        no_start[0] = b'X';
        assert_eq!(decode_frame(&no_start), Err(FrameError::BadStartMarker));
        let mut no_end = buf.clone();
        let n = no_end.len();
        no_end[n - 1] = b'X';
        assert_eq!(decode_frame(&no_end), Err(FrameError::BadEndMarker));
        let mut bad_class = buf;
        bad_class[8] = 7;
        // Class byte is covered by the CRC, so the checksum trips first.
        assert_eq!(decode_frame(&bad_class), Err(FrameError::ChecksumMismatch));
    }
}
