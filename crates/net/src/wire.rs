//! Wire-format accounting: framing and per-row headers.
//!
//! Sec. V: a speculative transmission can be cut mid-row, so the stream is
//! wrapped "with several unique bytes at both the beginning and the
//! ending" letting the receiver skip fragments. Sec. III-A: adaptively
//! transmitted rows must carry their index so they can be scattered back
//! into the model — the management overhead that rules out
//! element-granularity scheduling. These constants make both overheads
//! visible to the channel byte accounting.

/// Unique marker bytes at the start of a framed transmission.
pub const FRAME_START_BYTES: u64 = 8;

/// Unique marker bytes at the end of a framed transmission.
pub const FRAME_END_BYTES: u64 = 8;

/// Fixed per-message header: iteration number + row count + MTA-time
/// report (Sec. IV-B: stragglers report their MTA time to other devices).
pub const MESSAGE_HEADER_BYTES: u64 = 16;

/// Per-row index header (`int32`, the PyTorch default the paper cites).
pub const ROW_INDEX_BYTES: u64 = 4;

/// Total framing overhead of one message, excluding per-row headers.
pub const fn message_overhead() -> u64 {
    FRAME_START_BYTES + FRAME_END_BYTES + MESSAGE_HEADER_BYTES
}

/// Size on the wire of one row whose payload is `payload_bytes`.
pub const fn framed_row_bytes(payload_bytes: u64) -> u64 {
    ROW_INDEX_BYTES + payload_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_small_but_nonzero() {
        assert!(message_overhead() >= 16);
        assert_eq!(framed_row_bytes(100), 104);
    }
}
