//! Seeded, deterministic packet-loss model for the wireless channel.
//!
//! The paper's ATP exists because robotic wireless links *lose frames*,
//! not just because they fade: bursts of interference corrupt whole
//! trains of packets while the PHY rate looks fine. This module models
//! that regime with the classic **Gilbert–Elliott** two-state Markov
//! chain (a `good` state with a small residual loss probability and a
//! `bad` state with a high one), layered with independent i.i.d. loss,
//! corruption, duplication, and reordering knobs, plus scripted
//! per-link loss windows from a fault plan.
//!
//! The model decides a [`ChunkFate`] for every chunk the moment the
//! fluid-flow integration completes it. Fates are drawn from per-link
//! [`DetRng`] streams forked from one seed, and the Gilbert–Elliott
//! state sequence is pre-generated on the same 0.1 s grid as the fade
//! traces in [`crate::ChannelProfile`] — so a run is bit-reproducible
//! for a given seed regardless of thread count, exactly like the rest
//! of the simulation.

use std::collections::BTreeMap;

use rog_sim::Time;
use rog_tensor::rng::DetRng;

use crate::Trace;

/// Ceiling on the effective per-chunk loss probability. Keeping it
/// strictly below 1.0 guarantees reliable-class retransmission always
/// makes progress, so no run can livelock on a scripted `rate 1.0`
/// window.
pub const MAX_LOSS_PROB: f64 = 0.95;

/// Grid step (seconds) of the pre-generated Gilbert–Elliott state
/// trace; matches `ChannelProfile::dt`.
const GE_DT: Time = 0.1;

/// Gilbert–Elliott burst-loss parameters.
///
/// Transition probabilities are per 0.1 s grid step, like the Markov
/// fade overlays in [`crate::FadeProfile`]. The stationary fraction of
/// time spent in the bad state is `enter_prob / (enter_prob +
/// exit_prob)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeParams {
    /// Probability per grid step of entering the bad state.
    pub enter_prob: f64,
    /// Probability per grid step of leaving the bad state.
    pub exit_prob: f64,
    /// Chunk-loss probability while in the good state.
    pub loss_good: f64,
    /// Chunk-loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GeParams {
    /// A bursty preset tuned so the *time-average* loss rate is
    /// approximately `mean_loss`: bad-state residency ≈ 1/6 of the
    /// time (mean burst ≈ 1 s on the 0.1 s grid), good-state loss 1 %,
    /// and the bad-state loss solved from the stationary mixture.
    pub fn bursty(mean_loss: f64) -> Self {
        let enter_prob = 0.02;
        let exit_prob = 0.10;
        let pi_bad = enter_prob / (enter_prob + exit_prob);
        let loss_good = 0.01f64.min(mean_loss);
        let loss_bad =
            ((mean_loss - (1.0 - pi_bad) * loss_good) / pi_bad).clamp(0.0, MAX_LOSS_PROB);
        Self {
            enter_prob,
            exit_prob,
            loss_good,
            loss_bad,
        }
    }

    /// Stationary (time-average) chunk-loss probability of the chain.
    pub fn mean_loss(&self) -> f64 {
        let pi_bad = self.enter_prob / (self.enter_prob + self.exit_prob).max(1e-12);
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

/// Configuration of the channel's loss behaviour.
///
/// The default is fully off; a channel carrying an off config behaves
/// byte-identically to one with no loss model installed at all (this is
/// regression-tested end to end).
#[derive(Debug, Clone, PartialEq)]
pub struct LossConfig {
    /// Root seed; per-link fate streams and Gilbert–Elliott state
    /// traces are forked from it.
    pub seed: u64,
    /// Independent per-chunk loss probability, added on top of the
    /// Gilbert–Elliott component.
    pub iid_loss: f64,
    /// Per-chunk probability that a delivered chunk arrives with a
    /// corrupted payload (CRC failure at the receiver).
    pub corrupt: f64,
    /// Per-chunk probability that a delivered chunk is duplicated in
    /// flight (receiver-side dedup absorbs the copy).
    pub duplicate: f64,
    /// Per-chunk probability that a delivered chunk arrives out of
    /// order relative to its flow.
    pub reorder: f64,
    /// Optional burst-loss chain layered on the i.i.d. knobs.
    pub ge: Option<GeParams>,
}

impl Default for LossConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl LossConfig {
    /// A configuration that never loses, corrupts, duplicates, or
    /// reorders anything.
    pub fn off() -> Self {
        Self {
            seed: 0,
            iid_loss: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            ge: None,
        }
    }

    /// i.i.d. loss at `rate` with seed `seed`, nothing else.
    pub fn iid(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            iid_loss: rate,
            ..Self::off()
        }
    }

    /// Gilbert–Elliott burst loss with time-average rate ≈ `mean_loss`.
    pub fn gilbert_elliott(seed: u64, mean_loss: f64) -> Self {
        Self {
            seed,
            ge: Some(GeParams::bursty(mean_loss)),
            ..Self::off()
        }
    }

    /// True when every knob is zero and no chain is configured — the
    /// model would deliver every chunk intact.
    pub fn is_off(&self) -> bool {
        self.iid_loss == 0.0
            && self.corrupt == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.ge.is_none()
    }
}

/// What happened to one chunk on the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkFate {
    /// Arrived intact, in order, exactly once.
    Delivered,
    /// Arrived intact but a spurious copy arrived too (dedup at the
    /// receiver's sequence window absorbs it).
    Duplicated,
    /// Arrived intact but out of order relative to its flow.
    Reordered,
    /// Never arrived.
    Lost,
    /// Arrived but failed its CRC32 check; the receiver drops it.
    Corrupt,
}

impl ChunkFate {
    /// True when the chunk's payload is usable by the receiver
    /// (delivered, possibly duplicated or reordered).
    pub fn intact(self) -> bool {
        matches!(
            self,
            ChunkFate::Delivered | ChunkFate::Duplicated | ChunkFate::Reordered
        )
    }
}

/// A scripted extra-loss window on one link (compiled from a
/// fault-plan `loss` directive).
#[derive(Debug, Clone, Copy, PartialEq)]
struct LossWindow {
    link: usize,
    start: Time,
    end: Time,
    rate: f64,
}

/// Per-link deterministic loss state: a pre-generated Gilbert–Elliott
/// bad-state indicator trace and a fate RNG stream.
#[derive(Debug, Clone)]
struct LinkLoss {
    /// 1.0 while the chain is in the bad state, 0.0 otherwise.
    ge_bad: Option<Trace>,
    rng: DetRng,
}

/// The channel's packet-granular loss model.
///
/// Built once per run from a [`LossConfig`], the number of links, and
/// the run duration; consulted by `Channel::advance_until` for every
/// chunk the instant the fluid model completes it.
///
/// Per-link state (the Gilbert–Elliott indicator trace and the fate
/// RNG) is materialized **lazily** on first touch: a fleet-scale run
/// declares `workers × shards` links but only ever transmits on the
/// ones its topology uses, and every link's state is forked
/// independently from the root seed, so deferring construction is
/// byte-identical to building everything up front.
#[derive(Debug, Clone)]
pub struct LossModel {
    cfg: LossConfig,
    root: DetRng,
    n_links: usize,
    duration: Time,
    links: BTreeMap<usize, LinkLoss>,
    windows: Vec<LossWindow>,
}

impl LossModel {
    /// Builds the model for `n_links` links. Per-link Gilbert–Elliott
    /// traces and fate RNGs are forked from `cfg.seed` on first use;
    /// nothing is allocated per link here.
    pub fn build(cfg: &LossConfig, n_links: usize, duration: Time) -> Self {
        Self {
            cfg: cfg.clone(),
            root: DetRng::new(cfg.seed ^ 0x105E_C0DE),
            n_links,
            duration,
            links: BTreeMap::new(),
            windows: Vec::new(),
        }
    }

    /// The per-link state, materialized on demand. `None` for links
    /// outside the declared range. The fork salts are pure functions
    /// of the link id, so touch order cannot change any stream.
    fn link_state(&mut self, link: usize) -> Option<&mut LinkLoss> {
        if link >= self.n_links {
            return None;
        }
        if !self.links.contains_key(&link) {
            let ge_bad = self.cfg.ge.map(|ge| {
                Self::generate_ge_trace(
                    &ge,
                    self.root.fork(0x70 + link as u64).seed(),
                    self.duration,
                )
            });
            self.links.insert(
                link,
                LinkLoss {
                    ge_bad,
                    rng: self.root.fork(0x90 + link as u64),
                },
            );
        }
        self.links.get_mut(&link)
    }

    /// Number of links whose state has actually been materialized
    /// (diagnostic; bounded by the links the run transmitted on).
    pub fn materialized_links(&self) -> usize {
        self.links.len()
    }

    /// Number of links the model was declared with.
    pub fn n_links(&self) -> usize {
        self.n_links
    }

    /// Registers a scripted loss window (extra i.i.d. loss `rate` on
    /// `link` during `[start, end)`). Validation — finite bounds,
    /// `0 ≤ rate ≤ 1`, non-overlap per link — is the fault plan's job.
    pub fn add_window(&mut self, link: usize, start: Time, end: Time, rate: f64) {
        self.windows.push(LossWindow {
            link,
            start,
            end,
            rate,
        });
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &LossConfig {
        &self.cfg
    }

    /// True when no knob, chain, or window can ever harm a chunk.
    pub fn is_transparent(&self) -> bool {
        self.cfg.is_off() && self.windows.iter().all(|w| w.rate == 0.0)
    }

    /// Effective chunk-loss probability on `link` at time `t`
    /// (Gilbert–Elliott state + i.i.d. + scripted windows, capped at
    /// [`MAX_LOSS_PROB`]). Takes `&mut self` because the link's
    /// Gilbert–Elliott trace is materialized on first touch.
    pub fn loss_prob(&mut self, link: usize, t: Time) -> f64 {
        let mut p = self.cfg.iid_loss;
        let ge_cfg = self.cfg.ge;
        if let Some(ll) = self.link_state(link) {
            if let (Some(ge), Some(tr)) = (ge_cfg.as_ref(), ll.ge_bad.as_ref()) {
                p += if tr.value_at(t) > 0.5 {
                    ge.loss_bad
                } else {
                    ge.loss_good
                };
            }
        }
        for w in &self.windows {
            if w.link == link && t >= w.start && t < w.end {
                p += w.rate;
            }
        }
        p.clamp(0.0, MAX_LOSS_PROB)
    }

    /// Draws the fate of the next chunk completed on `link` at time
    /// `t`, consuming that link's RNG stream. Deterministic: the event
    /// loop is single-threaded and flows are iterated in `FlowId`
    /// order, so the draw sequence is a pure function of the schedule.
    pub fn chunk_fate(&mut self, link: usize, t: Time) -> ChunkFate {
        let p_loss = self.loss_prob(link, t);
        let corrupt = self.cfg.corrupt;
        let duplicate = self.cfg.duplicate;
        let reorder = self.cfg.reorder;
        let Some(ll) = self.link_state(link) else {
            return ChunkFate::Delivered;
        };
        let u = ll.rng.uniform();
        if u < p_loss {
            return ChunkFate::Lost;
        }
        if u < (p_loss + corrupt).min(1.0) {
            return ChunkFate::Corrupt;
        }
        if duplicate > 0.0 && ll.rng.chance(duplicate) {
            return ChunkFate::Duplicated;
        }
        if reorder > 0.0 && ll.rng.chance(reorder) {
            return ChunkFate::Reordered;
        }
        ChunkFate::Delivered
    }

    /// Pre-generates the bad-state indicator of the Gilbert–Elliott
    /// chain on the 0.1 s grid, started from its stationary
    /// distribution.
    fn generate_ge_trace(ge: &GeParams, seed: u64, duration: Time) -> Trace {
        let n = (duration / GE_DT).ceil().max(1.0) as usize + 1;
        let mut rng = DetRng::new(seed ^ 0x6E11);
        let pi_bad = ge.enter_prob / (ge.enter_prob + ge.exit_prob).max(1e-12);
        let mut bad = rng.chance(pi_bad);
        let samples: Vec<f64> = (0..n)
            .map(|_| {
                if bad {
                    if rng.chance(ge.exit_prob) {
                        bad = false;
                    }
                } else if rng.chance(ge.enter_prob) {
                    bad = true;
                }
                if bad {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        Trace::from_samples(GE_DT, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_is_transparent_and_delivers_everything() {
        let cfg = LossConfig::off();
        assert!(cfg.is_off());
        let mut m = LossModel::build(&cfg, 3, 100.0);
        assert!(m.is_transparent());
        for i in 0..200 {
            assert_eq!(m.chunk_fate(i % 3, i as f64 * 0.05), ChunkFate::Delivered);
        }
    }

    #[test]
    fn iid_loss_rate_is_roughly_honoured() {
        let mut m = LossModel::build(&LossConfig::iid(7, 0.2), 1, 10.0);
        let n = 20_000;
        let lost = (0..n)
            .filter(|_| m.chunk_fate(0, 1.0) == ChunkFate::Lost)
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn ge_preset_hits_requested_mean_loss() {
        let ge = GeParams::bursty(0.10);
        assert!((ge.mean_loss() - 0.10).abs() < 1e-9);
        // Empirically: drive the chain over a long horizon.
        let mut m = LossModel::build(&LossConfig::gilbert_elliott(3, 0.10), 1, 3_000.0);
        let n = 30_000usize;
        let lost = (0..n)
            .filter(|i| m.chunk_fate(0, *i as f64 * 0.1) == ChunkFate::Lost)
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.10).abs() < 0.03, "observed {rate}");
    }

    #[test]
    fn ge_loss_is_bursty_not_iid() {
        // Consecutive-loss runs should be much longer than under i.i.d.
        // loss of the same mean rate.
        let mut ge = LossModel::build(&LossConfig::gilbert_elliott(11, 0.10), 1, 3_000.0);
        let mut iid = LossModel::build(&LossConfig::iid(11, 0.10), 1, 3_000.0);
        let max_run = |m: &mut LossModel| {
            let (mut cur, mut best) = (0usize, 0usize);
            for i in 0..20_000 {
                if m.chunk_fate(0, i as f64 * 0.1) == ChunkFate::Lost {
                    cur += 1;
                    best = best.max(cur);
                } else {
                    cur = 0;
                }
            }
            best
        };
        let (ge_run, iid_run) = (max_run(&mut ge), max_run(&mut iid));
        assert!(
            ge_run > 2 * iid_run,
            "GE max loss run {ge_run} vs iid {iid_run}"
        );
    }

    #[test]
    fn fate_draws_are_deterministic_per_seed() {
        let draw = |seed: u64| {
            let mut m = LossModel::build(&LossConfig::iid(seed, 0.3), 2, 10.0);
            (0..100)
                .map(|i| m.chunk_fate(i % 2, i as f64 * 0.01))
                .collect::<Vec<ChunkFate>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn windows_add_loss_only_inside_their_span() {
        let mut m = LossModel::build(&LossConfig::off(), 2, 100.0);
        m.add_window(1, 10.0, 20.0, 0.5);
        assert!(!m.is_transparent());
        assert_eq!(m.loss_prob(1, 5.0), 0.0);
        assert_eq!(m.loss_prob(1, 15.0), 0.5);
        assert_eq!(m.loss_prob(1, 20.0), 0.0, "end is exclusive");
        assert_eq!(m.loss_prob(0, 15.0), 0.0, "other link untouched");
    }

    #[test]
    fn loss_prob_is_capped_below_one() {
        let mut m = LossModel::build(&LossConfig::iid(1, 0.9), 1, 10.0);
        m.add_window(0, 0.0, 10.0, 1.0);
        assert_eq!(m.loss_prob(0, 5.0), MAX_LOSS_PROB);
    }

    #[test]
    fn corruption_duplication_and_reordering_fates_occur() {
        let cfg = LossConfig {
            seed: 9,
            iid_loss: 0.1,
            corrupt: 0.1,
            duplicate: 0.1,
            reorder: 0.1,
            ge: None,
        };
        let mut m = LossModel::build(&cfg, 1, 10.0);
        let fates: Vec<ChunkFate> = (0..5_000).map(|_| m.chunk_fate(0, 1.0)).collect();
        for want in [
            ChunkFate::Delivered,
            ChunkFate::Duplicated,
            ChunkFate::Reordered,
            ChunkFate::Lost,
            ChunkFate::Corrupt,
        ] {
            assert!(fates.contains(&want), "no {want:?} in 5000 draws");
        }
        assert!(fates[0].intact() || !fates[0].intact());
        assert!(ChunkFate::Duplicated.intact() && ChunkFate::Reordered.intact());
        assert!(!ChunkFate::Lost.intact() && !ChunkFate::Corrupt.intact());
    }

    #[test]
    fn link_state_is_materialized_lazily() {
        let mut m = LossModel::build(&LossConfig::gilbert_elliott(5, 0.10), 1_024, 100.0);
        assert_eq!(m.n_links(), 1_024);
        assert_eq!(m.materialized_links(), 0);
        m.chunk_fate(7, 1.0);
        m.chunk_fate(7, 2.0);
        m.chunk_fate(900, 1.0);
        assert_eq!(m.materialized_links(), 2);
        // Out-of-range links are never materialized.
        assert_eq!(m.chunk_fate(5_000, 1.0), ChunkFate::Delivered);
        assert_eq!(m.materialized_links(), 2);
    }

    #[test]
    fn touch_order_does_not_change_any_links_stream() {
        // Link 2's fate stream must be identical whether or not other
        // links were materialized first (forks are independent).
        let cfg = LossConfig::gilbert_elliott(13, 0.15);
        let mut cold = LossModel::build(&cfg, 8, 50.0);
        let mut warm = LossModel::build(&cfg, 8, 50.0);
        for l in [0usize, 5, 1, 7] {
            warm.chunk_fate(l, 0.5);
        }
        let a: Vec<ChunkFate> = (0..500)
            .map(|i| cold.chunk_fate(2, i as f64 * 0.1))
            .collect();
        let b: Vec<ChunkFate> = (0..500)
            .map(|i| warm.chunk_fate(2, i as f64 * 0.1))
            .collect();
        assert_eq!(a, b);
    }
}
