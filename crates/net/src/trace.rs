//! Piecewise-constant time series.

use rog_sim::Time;

/// A piecewise-constant series sampled on a fixed grid, wrapping around
/// when read past its end (the paper's artifact replays its 5-minute
/// recorded traces in a loop the same way).
///
/// Used for channel capacity (values in bit/s) and per-link quality
/// factors (values in `[0, 1]`).
///
/// # Example
///
/// ```
/// use rog_net::Trace;
///
/// let t = Trace::from_samples(0.5, vec![10.0, 20.0]);
/// assert_eq!(t.value_at(0.0), 10.0);
/// assert_eq!(t.value_at(0.7), 20.0);
/// assert_eq!(t.value_at(1.1), 10.0); // wraps
/// assert_eq!(t.duration(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    dt: Time,
    samples: Vec<f64>,
}

impl Trace {
    /// Creates a trace from a sample grid of step `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `samples` is empty.
    pub fn from_samples(dt: Time, samples: Vec<f64>) -> Self {
        assert!(dt > 0.0, "trace step must be positive");
        assert!(!samples.is_empty(), "trace must have at least one sample");
        Self { dt, samples }
    }

    /// Creates a constant trace.
    pub fn constant(value: f64) -> Self {
        Self::from_samples(1.0, vec![value])
    }

    /// Sample step in seconds.
    pub fn dt(&self) -> Time {
        self.dt
    }

    /// Underlying samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Duration of one period of the trace.
    pub fn duration(&self) -> Time {
        self.dt * self.samples.len() as Time
    }

    /// Value at time `t` (wrapping past the end; clamped at negative `t`).
    pub fn value_at(&self, t: Time) -> f64 {
        if t <= 0.0 {
            return self.samples[0];
        }
        let idx = (t / self.dt) as usize % self.samples.len();
        self.samples[idx]
    }

    /// The first grid breakpoint strictly after `t`.
    ///
    /// Between consecutive breakpoints the value is constant, so channel
    /// integration only needs to look at these instants.
    pub fn next_breakpoint_after(&self, t: Time) -> Time {
        let steps = (t / self.dt).floor() + 1.0;
        let bp = steps * self.dt;
        // Guard against t sitting exactly on a breakpoint within float noise.
        if bp <= t + 1e-12 {
            bp + self.dt
        } else {
            bp
        }
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.samples.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Applies `f` to every sample, returning a new trace.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Trace {
        Trace::from_samples(self.dt, self.samples.iter().map(|&v| f(v)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_lookup_and_wrap() {
        let t = Trace::from_samples(0.1, vec![1.0, 2.0, 3.0]);
        assert_eq!(t.value_at(0.05), 1.0);
        assert_eq!(t.value_at(0.15), 2.0);
        assert_eq!(t.value_at(0.25), 3.0);
        assert_eq!(t.value_at(0.35), 1.0);
        assert_eq!(t.value_at(-1.0), 1.0);
    }

    #[test]
    fn breakpoints_advance_strictly() {
        let t = Trace::from_samples(0.1, vec![1.0; 10]);
        let bp = t.next_breakpoint_after(0.0);
        assert!((bp - 0.1).abs() < 1e-9);
        let bp2 = t.next_breakpoint_after(bp);
        assert!(bp2 > bp + 1e-6);
        assert!((bp2 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn breakpoint_mid_interval() {
        let t = Trace::from_samples(0.5, vec![1.0, 2.0]);
        assert!((t.next_breakpoint_after(0.7) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn summary_stats() {
        let t = Trace::from_samples(1.0, vec![1.0, 3.0]);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.duration(), 2.0);
    }

    #[test]
    fn map_transforms_samples() {
        let t = Trace::from_samples(1.0, vec![1.0, 2.0]).map(|v| v * 10.0);
        assert_eq!(t.samples(), &[10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_panics() {
        let _ = Trace::from_samples(0.1, vec![]);
    }
}
