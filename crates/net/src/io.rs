//! Trace persistence: CSV import/export.
//!
//! The paper's artifact replays bandwidth traces recorded on the real
//! robots (with `tc`) so that evaluation is reproducible on stationary
//! devices. This module provides the equivalent path: any recorded
//! trace in `time_s,value` CSV form (like the `results/fig3_*.csv`
//! artifacts) can be loaded and driven through the simulator, and any
//! generated trace can be exported for external plotting or replay.

use std::fmt;
use std::fs;
use std::path::Path;

use crate::Trace;

/// Error from parsing a trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    line: usize,
    msg: String,
}

impl TraceParseError {
    fn new(line: usize, msg: impl Into<String>) -> Self {
        Self {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace CSV line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceParseError {}

/// Serializes a trace as `time_s,value` CSV (with header).
pub fn trace_to_csv(trace: &Trace) -> String {
    let mut out = String::from("time_s,value\n");
    for (i, &v) in trace.samples().iter().enumerate() {
        out.push_str(&format!("{:.4},{v}\n", i as f64 * trace.dt()));
    }
    out
}

/// Parses a `time_s,value` CSV (header optional) into a trace.
///
/// The sample step is inferred from the first two timestamps; the
/// values may be in any unit (bit/s for capacity traces, a factor in
/// `(0, 1]` for link traces).
///
/// # Errors
///
/// Returns [`TraceParseError`] on malformed rows, non-increasing
/// timestamps, or fewer than two samples.
pub fn trace_from_csv(csv: &str) -> Result<Trace, TraceParseError> {
    let mut times = Vec::new();
    let mut values = Vec::new();
    for (ln, line) in csv.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let t_str = parts.next().unwrap_or_default().trim();
        let v_str = parts
            .next()
            .ok_or_else(|| TraceParseError::new(ln + 1, "expected two columns"))?
            .trim();
        let (Ok(t), Ok(v)) = (t_str.parse::<f64>(), v_str.parse::<f64>()) else {
            if ln == 0 {
                // Header row.
                continue;
            }
            return Err(TraceParseError::new(ln + 1, "non-numeric row"));
        };
        times.push(t);
        values.push(v);
    }
    if values.len() < 2 {
        return Err(TraceParseError::new(0, "need at least two samples"));
    }
    let dt = times[1] - times[0];
    if dt <= 0.0 {
        return Err(TraceParseError::new(2, "timestamps must increase"));
    }
    for (i, w) in times.windows(2).enumerate() {
        let step = w[1] - w[0];
        if (step - dt).abs() > 0.02 * dt {
            return Err(TraceParseError::new(
                i + 2,
                format!("irregular sample step {step} (expected {dt})"),
            ));
        }
    }
    Ok(Trace::from_samples(dt, values))
}

/// Writes a trace to a CSV file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_trace(trace: &Trace, path: impl AsRef<Path>) -> std::io::Result<()> {
    fs::write(path, trace_to_csv(trace))
}

/// Reads a trace from a CSV file.
///
/// # Errors
///
/// Propagates I/O errors; parse failures are mapped to
/// `InvalidData`.
pub fn load_trace(path: impl AsRef<Path>) -> std::io::Result<Trace> {
    let csv = fs::read_to_string(path)?;
    trace_from_csv(&csv)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_trace() {
        let t = Trace::from_samples(0.1, vec![10.0, 20.0, 15.0, 0.5]);
        let parsed = trace_from_csv(&trace_to_csv(&t)).expect("parses");
        assert!((parsed.dt() - 0.1).abs() < 1e-9);
        assert_eq!(parsed.samples(), t.samples());
    }

    #[test]
    fn header_is_optional() {
        let with = trace_from_csv("time_s,value\n0.0,1.0\n0.5,2.0\n").expect("with header");
        let without = trace_from_csv("0.0,1.0\n0.5,2.0\n").expect("without header");
        assert_eq!(with, without);
        assert_eq!(with.dt(), 0.5);
    }

    #[test]
    fn malformed_rows_are_rejected() {
        assert!(trace_from_csv("0.0,1.0\nbogus,2.0\n").is_err());
        assert!(trace_from_csv("0.0,1.0\n").is_err());
        assert!(trace_from_csv("0.0,1.0\n0.1,2.0\n0.5,3.0\n").is_err()); // irregular step
        assert!(trace_from_csv("0.0;1.0\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let t = Trace::from_samples(0.1, vec![5.0; 8]);
        let dir = std::env::temp_dir().join("rog_net_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("trace.csv");
        save_trace(&t, &path).expect("save");
        let back = load_trace(&path).expect("load");
        assert_eq!(back.samples(), t.samples());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generated_trace_replays_identically() {
        // The artifact path: record → export → replay.
        let p = crate::ChannelProfile::outdoor();
        let original = p.generate(99, 30.0);
        let replayed = trace_from_csv(&trace_to_csv(&original)).expect("parses");
        for (a, b) in original.samples().iter().zip(replayed.samples()) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
    }
}
