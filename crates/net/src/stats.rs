//! Fluctuation statistics over bandwidth traces (paper Sec. II-B, Fig. 3).

use rog_sim::Time;

use crate::Trace;

/// Mean time between successive relative bandwidth fluctuations of at
/// least `frac` (e.g. `0.2` for the paper's "20 % fluctuation").
///
/// A fluctuation event is counted when the capacity departs from a
/// running reference value by at least `frac` relative to that reference;
/// the reference then resets, so overlapping excursions are counted once.
/// Returns `f64::INFINITY` if no event occurs.
///
/// # Example
///
/// ```
/// use rog_net::{Trace, stats};
///
/// let flat = Trace::from_samples(0.1, vec![100.0; 50]);
/// assert!(stats::mean_fluctuation_interval(&flat, 0.2).is_infinite());
///
/// let spiky = Trace::from_samples(0.1, vec![100.0, 10.0].repeat(25));
/// assert!(stats::mean_fluctuation_interval(&spiky, 0.2) < 0.2);
/// ```
pub fn mean_fluctuation_interval(trace: &Trace, frac: f64) -> Time {
    let samples = trace.samples();
    if samples.len() < 2 {
        return f64::INFINITY;
    }
    let mut reference = samples[0].max(f64::MIN_POSITIVE);
    let mut events = 0usize;
    for &v in &samples[1..] {
        if (v - reference).abs() / reference >= frac {
            events += 1;
            reference = v.max(f64::MIN_POSITIVE);
        }
    }
    if events == 0 {
        f64::INFINITY
    } else {
        trace.duration() / events as Time
    }
}

/// Fraction of samples below `frac` of the trace mean (how often the
/// channel has effectively collapsed — "dropped to extremely low values
/// around 0 Mbit/s" in the paper's outdoor measurements).
pub fn fraction_below(trace: &Trace, frac: f64) -> f64 {
    let threshold = frac * trace.mean();
    let n = trace.samples().len();
    trace.samples().iter().filter(|&&v| v < threshold).count() as f64 / n as f64
}

/// Coefficient of variation (stddev / mean) of the trace.
pub fn coefficient_of_variation(trace: &Trace) -> f64 {
    let mean = trace.mean();
    if mean == 0.0 {
        return 0.0;
    }
    let var = trace
        .samples()
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / trace.samples().len() as f64;
    var.sqrt() / mean
}

/// Per-link loss-rate estimator: an exponentially weighted moving
/// average over delivery reports.
///
/// `Channel` feeds it one observation per finished flow (bad chunks /
/// total chunks); ATP's MTA computation can then discount a link's
/// [`crate::Channel::estimated_rate`] by the estimated loss to get an
/// expected *goodput* (see `Channel::estimated_goodput_rate`). The
/// first observation seeds the average directly so a link does not
/// have to "warm up" from a fictitious zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossEwma {
    alpha: f64,
    rate: Option<f64>,
}

impl LossEwma {
    /// Smoothing factor used by the channel's per-link estimators.
    pub const DEFAULT_ALPHA: f64 = 0.2;

    /// Creates an estimator with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range: {alpha}");
        Self { alpha, rate: None }
    }

    /// Records one delivery report: `bad` of `total` chunks were lost
    /// or corrupt. Reports with no chunks are ignored.
    pub fn observe(&mut self, bad: usize, total: usize) {
        if total == 0 {
            return;
        }
        let sample = bad as f64 / total as f64;
        self.rate = Some(match self.rate {
            None => sample,
            Some(r) => r + self.alpha * (sample - r),
        });
    }

    /// Current loss-rate estimate in `[0, 1]`; `0.0` before any
    /// observation (an unobserved link is assumed clean).
    pub fn rate(&self) -> f64 {
        self.rate.unwrap_or(0.0)
    }

    /// True once at least one report has been folded in.
    pub fn observed(&self) -> bool {
        self.rate.is_some()
    }
}

/// Summary row used by the Fig. 3 experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Mean capacity in bit/s.
    pub mean_bps: f64,
    /// Minimum capacity in bit/s.
    pub min_bps: f64,
    /// Maximum capacity in bit/s.
    pub max_bps: f64,
    /// Mean seconds between ≥20 % fluctuations.
    pub interval_20pct: Time,
    /// Mean seconds between ≥40 % fluctuations.
    pub interval_40pct: Time,
    /// Fraction of time below 10 % of the mean (deep fade).
    pub deep_fade_fraction: f64,
    /// Coefficient of variation.
    pub cv: f64,
}

/// Computes the full summary for a trace.
pub fn summarize(trace: &Trace) -> TraceSummary {
    TraceSummary {
        mean_bps: trace.mean(),
        min_bps: trace.min(),
        max_bps: trace.max(),
        interval_20pct: mean_fluctuation_interval(trace, 0.20),
        interval_40pct: mean_fluctuation_interval(trace, 0.40),
        deep_fade_fraction: fraction_below(trace, 0.10),
        cv: coefficient_of_variation(trace),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_trace_never_fluctuates() {
        let t = Trace::from_samples(0.1, vec![5.0; 100]);
        assert!(mean_fluctuation_interval(&t, 0.01).is_infinite());
        assert_eq!(fraction_below(&t, 0.5), 0.0);
        assert_eq!(coefficient_of_variation(&t), 0.0);
    }

    #[test]
    fn alternating_trace_fluctuates_every_step() {
        let t = Trace::from_samples(0.1, [100.0, 50.0].repeat(50));
        let interval = mean_fluctuation_interval(&t, 0.2);
        // Every step is a ≥20% move relative to the previous reference.
        assert!((interval - 0.1).abs() < 0.02, "interval {interval}");
    }

    #[test]
    fn threshold_ordering_holds() {
        // Bigger thresholds can only be hit less often.
        let t = Trace::from_samples(
            0.1,
            (0..600)
                .map(|i| 100.0 + 40.0 * ((i as f64) * 0.7).sin() + 15.0 * ((i as f64) * 2.3).cos())
                .collect(),
        );
        let i10 = mean_fluctuation_interval(&t, 0.10);
        let i30 = mean_fluctuation_interval(&t, 0.30);
        assert!(i30 >= i10);
    }

    #[test]
    fn fraction_below_counts_fades() {
        let t = Trace::from_samples(0.1, vec![100.0, 100.0, 100.0, 1.0]);
        // mean = 75.25, threshold 7.525 → one sample below.
        assert!((fraction_below(&t, 0.1) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn loss_ewma_tracks_observations() {
        let mut e = LossEwma::new(0.5);
        assert_eq!(e.rate(), 0.0);
        assert!(!e.observed());
        e.observe(0, 0); // no chunks: ignored
        assert!(!e.observed());
        e.observe(2, 10); // seeds at 0.2
        assert!((e.rate() - 0.2).abs() < 1e-12);
        e.observe(10, 10); // 0.2 + 0.5·(1.0 − 0.2) = 0.6
        assert!((e.rate() - 0.6).abs() < 1e-12);
        e.observe(0, 10); // decays toward zero, never below it
        assert!((e.rate() - 0.3).abs() < 1e-12);
        assert!(e.observed());
    }

    #[test]
    #[should_panic(expected = "alpha out of range")]
    fn loss_ewma_rejects_bad_alpha() {
        let _ = LossEwma::new(0.0);
    }

    #[test]
    fn summarize_is_consistent() {
        let t = Trace::from_samples(0.1, vec![10.0, 20.0, 30.0]);
        let s = summarize(&t);
        assert_eq!(s.mean_bps, 20.0);
        assert_eq!(s.min_bps, 10.0);
        assert_eq!(s.max_bps, 30.0);
    }
}
