//! Delivery classes over the lossy channel: reliable and best-effort.
//!
//! "Boosting Distributed ML Training Through Loss-tolerant Transmission"
//! (PAPERS.md) splits training traffic into must-deliver control state
//! and droppable gradient payload. We do the same:
//!
//! * **Reliable** — control, version vectors, and model-resync bulk.
//!   Acknowledged, retransmitted after a virtual-clock timeout with
//!   capped exponential backoff, deduplicated at the receiver by a
//!   sequence window, reordered back into sequence. Exactly-once,
//!   in-order (property-tested under arbitrary seeded loss /
//!   duplication / reordering schedules).
//! * **Best-effort** — gradient rows. A damaged or missing row is
//!   simply *not committed*: its error-feedback residual keeps
//!   accumulating on the worker and its version entry ages toward
//!   RSP's staleness bound, so the gate — not the transport — bounds
//!   the damage. No acks, no retransmission, no head-of-line blocking.
//!
//! The engines drive reliable transfers round-by-round through
//! [`ReliableTransfer`]: start a flow for the outstanding chunks, feed
//! the resulting [`crate::DeliveryReport`] back, and either finish or
//! wait out a backoff delay before retransmitting the survivors.

use rog_sim::Time;

use crate::loss::ChunkFate;

/// Which delivery contract a transfer runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryClass {
    /// Ack/retransmit until everything arrives exactly once, in order.
    Reliable,
    /// Detect-and-drop; loss surfaces as an un-committed payload.
    BestEffort,
}

/// Capped exponential backoff schedule for reliable retransmissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retransmission (seconds).
    pub base: Time,
    /// Multiplier applied per further attempt.
    pub factor: f64,
    /// Ceiling on the delay.
    pub cap: Time,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base: 0.1,
            factor: 2.0,
            cap: 2.0,
        }
    }
}

impl BackoffPolicy {
    /// Delay before retransmission number `attempt` (1-based: the
    /// first retransmission waits `base`).
    pub fn delay(&self, attempt: u32) -> Time {
        let exp = attempt.saturating_sub(1).min(63);
        (self.base * self.factor.powi(exp as i32)).min(self.cap)
    }
}

/// Receiver-side duplicate suppression over sequence numbers.
///
/// Tracks a low-water mark below which everything has been accepted,
/// plus the sparse set of accepted sequence numbers above it. A frame
/// is accepted at most once regardless of how often the network
/// duplicates or the sender retransmits it.
///
/// A window built with [`SeqWindow::new`] waits forever for holes to
/// fill — correct for reliable senders that retransmit until acked.
/// Over a lossy lane where a hole can be permanent (a dropped UDP
/// datagram is never resent), use [`SeqWindow::bounded`] so the floor
/// abandons stale holes and `seen` stays bounded.
#[derive(Debug, Clone, Default)]
pub struct SeqWindow {
    floor: u64,
    seen: std::collections::BTreeSet<u64>,
    span: Option<u64>,
}

impl SeqWindow {
    /// Creates an empty window accepting sequence numbers from 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a window that gives up on holes older than `span` below
    /// the highest accepted sequence number: once `span` newer numbers
    /// have arrived, a missing one is written off as lost and the floor
    /// advances past it, bounding `seen` to at most `span + 1` entries.
    /// An arrival below the advanced floor reads as a duplicate.
    pub fn bounded(span: u64) -> Self {
        Self {
            span: Some(span),
            ..Self::default()
        }
    }

    /// Offers a sequence number; returns `true` exactly once per
    /// number (the first time it is seen).
    pub fn accept(&mut self, seq: u64) -> bool {
        if seq < self.floor || !self.seen.insert(seq) {
            return false;
        }
        while self.seen.remove(&self.floor) {
            self.floor += 1;
        }
        if let Some(span) = self.span {
            if let Some(&highest) = self.seen.iter().next_back() {
                let min_floor = highest.saturating_sub(span);
                if min_floor > self.floor {
                    self.floor = min_floor;
                    self.seen = self.seen.split_off(&self.floor);
                    while self.seen.remove(&self.floor) {
                        self.floor += 1;
                    }
                }
            }
        }
        true
    }

    /// Lowest sequence number not yet accepted.
    pub fn next_expected(&self) -> u64 {
        self.floor
    }

    /// True when every number below `n` has been accepted and nothing
    /// above is outstanding out of order.
    pub fn contiguous_through(&self, n: u64) -> bool {
        self.floor >= n && self.seen.is_empty()
    }
}

/// Receiver-side resequencing: buffers out-of-order arrivals and
/// releases items in strict sequence order.
#[derive(Debug, Clone, Default)]
pub struct ReorderBuffer<T> {
    next: u64,
    held: std::collections::BTreeMap<u64, T>,
}

impl<T> ReorderBuffer<T> {
    /// Creates an empty buffer expecting sequence number 0 first.
    pub fn new() -> Self {
        Self {
            next: 0,
            held: std::collections::BTreeMap::new(),
        }
    }

    /// Inserts an accepted item and returns every item that is now
    /// deliverable in order (possibly empty if a gap remains).
    pub fn push(&mut self, seq: u64, item: T) -> Vec<T> {
        self.held.insert(seq, item);
        let mut ready = Vec::new();
        while let Some(item) = self.held.remove(&self.next) {
            ready.push(item);
            self.next += 1;
        }
        ready
    }

    /// Sequence number of the next in-order delivery.
    pub fn next_in_order(&self) -> u64 {
        self.next
    }

    /// Number of items parked waiting for a gap to fill.
    pub fn parked(&self) -> usize {
        self.held.len()
    }
}

/// Progress verdict after feeding one round's fates to a
/// [`ReliableTransfer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReliableProgress {
    /// Every chunk has been delivered intact; the transfer is over.
    Done,
    /// Some chunks were lost or corrupt; retransmit the survivors
    /// after waiting `delay` (capped exponential backoff).
    Retry {
        /// Backoff delay before the retransmission flow starts.
        delay: Time,
    },
}

/// Sender-side state of one reliable multi-chunk transfer.
///
/// Round-based: each round puts the outstanding chunks on the air as
/// one flow; the delivery report marks each as arrived or not; lost
/// chunks carry over to the next round after a backoff delay. The
/// loss model's per-chunk loss probability is capped below 1, so a
/// transfer always terminates.
#[derive(Debug, Clone)]
pub struct ReliableTransfer {
    sizes: Vec<u64>,
    /// Indices (into the original chunk list) still outstanding.
    outstanding: Vec<usize>,
    attempt: u32,
    policy: BackoffPolicy,
}

impl ReliableTransfer {
    /// Starts a transfer of `chunks` (byte sizes, transmission order).
    pub fn new(chunks: Vec<u64>, policy: BackoffPolicy) -> Self {
        let outstanding = (0..chunks.len()).collect();
        Self {
            sizes: chunks,
            outstanding,
            attempt: 0,
            policy,
        }
    }

    /// Byte sizes of the chunks to put on the air this round.
    pub fn pending_chunks(&self) -> Vec<u64> {
        self.outstanding.iter().map(|&i| self.sizes[i]).collect()
    }

    /// Number of chunks still outstanding.
    pub fn pending_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Retransmission round this transfer is on (0 = first attempt).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Folds in one round's delivery fates. `fates[i]` corresponds to
    /// the `i`-th chunk of [`ReliableTransfer::pending_chunks`]; a
    /// missing fate (flow cut short) counts as not delivered. `None`
    /// fates — no loss model — mean everything transmitted arrived.
    pub fn on_round(
        &mut self,
        fates: Option<&[ChunkFate]>,
        transmitted: usize,
    ) -> ReliableProgress {
        let survivors: Vec<usize> = self
            .outstanding
            .iter()
            .enumerate()
            .filter(|&(round_i, _)| {
                round_i >= transmitted
                    || fates.is_some_and(|fs| !fs.get(round_i).is_some_and(|f| f.intact()))
            })
            .map(|(_, &chunk)| chunk)
            .collect();
        self.outstanding = survivors;
        if self.outstanding.is_empty() {
            ReliableProgress::Done
        } else {
            self.attempt += 1;
            ReliableProgress::Retry {
                delay: self.policy.delay(self.attempt),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rog_tensor::rng::DetRng;

    #[test]
    fn backoff_grows_then_caps() {
        let p = BackoffPolicy::default();
        assert!((p.delay(1) - 0.1).abs() < 1e-12);
        assert!((p.delay(2) - 0.2).abs() < 1e-12);
        assert!((p.delay(3) - 0.4).abs() < 1e-12);
        assert!((p.delay(10) - 2.0).abs() < 1e-12, "capped");
        assert!((p.delay(63) - 2.0).abs() < 1e-12, "no overflow");
    }

    #[test]
    fn seq_window_accepts_each_number_once() {
        let mut w = SeqWindow::new();
        assert!(w.accept(0));
        assert!(!w.accept(0), "duplicate");
        assert!(w.accept(2), "out of order ok");
        assert!(!w.accept(2));
        assert_eq!(w.next_expected(), 1);
        assert!(w.accept(1));
        assert_eq!(w.next_expected(), 3);
        assert!(w.contiguous_through(3));
        assert!(!w.accept(1), "below the floor");
    }

    #[test]
    fn bounded_seq_window_abandons_stale_holes() {
        let mut w = SeqWindow::bounded(4);
        assert!(w.accept(0));
        // Seq 1 is permanently lost; 2..=5 arrive. The hole is still
        // within the span, so the floor waits.
        for seq in 2..=5 {
            assert!(w.accept(seq));
        }
        assert_eq!(w.next_expected(), 1, "hole still inside the span");
        // Seq 6 pushes the hole past the span: written off as lost.
        assert!(w.accept(6));
        assert_eq!(w.next_expected(), 7, "hole at 1 abandoned");
        assert!(!w.accept(1), "late arrival below the floor reads as dup");
        // Memory stays bounded across many more permanent holes: only
        // even seqs ever arrive.
        for seq in (8..2_000u64).step_by(2) {
            assert!(w.accept(seq));
        }
        assert!(
            w.next_expected() >= 1_998 - 4,
            "floor keeps pace, got {}",
            w.next_expected()
        );
    }

    #[test]
    fn unbounded_seq_window_waits_for_holes() {
        let mut w = SeqWindow::new();
        assert!(w.accept(0));
        for seq in 2..200 {
            assert!(w.accept(seq));
        }
        assert_eq!(w.next_expected(), 1, "unbounded window never gives up");
        assert!(w.accept(1), "the hole can still fill");
        assert_eq!(w.next_expected(), 200);
    }

    #[test]
    fn reorder_buffer_releases_in_order() {
        let mut rb = ReorderBuffer::new();
        assert!(rb.push(2, "c").is_empty());
        assert!(rb.push(1, "b").is_empty());
        assert_eq!(rb.parked(), 2);
        assert_eq!(rb.push(0, "a"), vec!["a", "b", "c"]);
        assert_eq!(rb.next_in_order(), 3);
        assert_eq!(rb.parked(), 0);
    }

    #[test]
    fn reliable_transfer_retries_only_survivors() {
        let mut t = ReliableTransfer::new(vec![10, 20, 30], BackoffPolicy::default());
        assert_eq!(t.pending_chunks(), vec![10, 20, 30]);
        // Middle chunk lost, rest intact.
        let fates = [ChunkFate::Delivered, ChunkFate::Lost, ChunkFate::Delivered];
        match t.on_round(Some(&fates), 3) {
            ReliableProgress::Retry { delay } => assert!((delay - 0.1).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.pending_chunks(), vec![20]);
        // Flow cut before the chunk even went out: still outstanding.
        assert_eq!(
            t.on_round(Some(&[]), 0),
            ReliableProgress::Retry { delay: 0.2 }
        );
        assert_eq!(t.pending_chunks(), vec![20]);
        // Finally delivered.
        assert_eq!(
            t.on_round(Some(&[ChunkFate::Delivered]), 1),
            ReliableProgress::Done
        );
        assert_eq!(t.pending_count(), 0);
    }

    #[test]
    fn no_loss_model_means_transmitted_is_delivered() {
        let mut t = ReliableTransfer::new(vec![5, 5], BackoffPolicy::default());
        assert_eq!(t.on_round(None, 2), ReliableProgress::Done);
    }

    /// Full sender/receiver simulation of the reliable class over an
    /// adversarial network that loses, duplicates, and reorders frames
    /// (and their acks) according to a seeded schedule.
    ///
    /// Returns the receiver's delivered payload sequence.
    fn simulate_reliable(n_msgs: u64, seed: u64, loss: f64, dup: f64, reorder: f64) -> Vec<u64> {
        let mut rng = DetRng::new(seed);
        let policy = BackoffPolicy {
            base: 0.05,
            factor: 2.0,
            cap: 0.5,
        };
        // Sender: per-seq (attempts, next retransmit time). Receiver:
        // dedup window + reorder buffer. The "network" is a bag of
        // (arrival_time, seq) data frames and (arrival_time, cum_ack)
        // ack frames.
        let mut unacked: std::collections::BTreeMap<u64, (u32, f64)> =
            (0..n_msgs).map(|s| (s, (0, 0.0))).collect();
        let mut window = SeqWindow::new();
        let mut buffer: ReorderBuffer<u64> = ReorderBuffer::new();
        let mut delivered = Vec::new();
        let mut in_flight: Vec<(f64, bool, u64)> = Vec::new(); // (t, is_ack, value)
        let mut now = 0.0f64;
        for _ in 0..200_000u32 {
            if unacked.is_empty() {
                break;
            }
            // Transmit everything due.
            let due: Vec<u64> = unacked
                .iter()
                .filter(|(_, &(_, t))| t <= now)
                .map(|(&s, _)| s)
                .collect();
            for seq in due {
                let e = unacked.get_mut(&seq).expect("due seq");
                e.0 += 1;
                e.1 = now + policy.delay(e.0);
                let copies = 1 + usize::from(rng.chance(dup));
                for _ in 0..copies {
                    if rng.chance(loss) {
                        continue;
                    }
                    let delay = 0.01
                        + if rng.chance(reorder) {
                            rng.uniform() * 0.2
                        } else {
                            0.0
                        };
                    in_flight.push((now + delay, false, seq));
                }
            }
            // Advance to the next arrival or retransmit timer.
            let t_arr = in_flight
                .iter()
                .map(|&(t, _, _)| t)
                .fold(f64::INFINITY, f64::min);
            let t_rtx = unacked
                .values()
                .map(|&(_, t)| t)
                .fold(f64::INFINITY, f64::min);
            now = t_arr.min(t_rtx).max(now + 1e-6);
            // Deliver arrivals at `now` in deterministic order.
            let mut arriving: Vec<(f64, bool, u64)> = Vec::new();
            in_flight.retain(|&e| {
                if e.0 <= now {
                    arriving.push(e);
                    false
                } else {
                    true
                }
            });
            arriving.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            for (_, is_ack, value) in arriving {
                if is_ack {
                    // Cumulative ack: everything below `value` is done.
                    unacked.retain(|&s, _| s >= value);
                } else {
                    if window.accept(value) {
                        delivered.extend(buffer.push(value, value));
                    }
                    // Ack even duplicates (the original ack may have
                    // been lost); acks traverse the same lossy path.
                    if !rng.chance(loss) {
                        in_flight.push((now + 0.01, true, window.next_expected()));
                    }
                }
            }
        }
        assert!(unacked.is_empty(), "transfer did not complete: {unacked:?}");
        delivered
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Exactly-once, in-order delivery under any seeded
        /// loss/duplication/reordering schedule (loss capped below 1
        /// so the transfer terminates).
        #[test]
        fn reliable_delivery_is_exactly_once_in_order(
            n_msgs in 1u64..30,
            seed in 0u64..u64::MAX,
            loss in 0.0f64..0.9,
            dup in 0.0f64..0.5,
            reorder in 0.0f64..0.5,
        ) {
            let delivered = simulate_reliable(n_msgs, seed, loss, dup, reorder);
            let expect: Vec<u64> = (0..n_msgs).collect();
            prop_assert_eq!(delivered, expect);
        }

        /// The round-based transfer used by the engines terminates and
        /// covers every chunk exactly once under seeded loss.
        #[test]
        fn reliable_transfer_terminates_and_covers_all_chunks(
            n_chunks in 1usize..40,
            seed in 0u64..u64::MAX,
            loss in 0.0f64..0.9,
        ) {
            let mut rng = DetRng::new(seed);
            let sizes: Vec<u64> = (1..=n_chunks as u64).collect();
            let mut t = ReliableTransfer::new(sizes.clone(), BackoffPolicy::default());
            let mut delivered_bytes = 0u64;
            let mut rounds = 0u32;
            loop {
                rounds += 1;
                prop_assert!(rounds < 10_000, "transfer livelocked");
                let pending = t.pending_chunks();
                let fates: Vec<ChunkFate> = pending
                    .iter()
                    .map(|_| if rng.chance(loss) { ChunkFate::Lost } else { ChunkFate::Delivered })
                    .collect();
                delivered_bytes += pending
                    .iter()
                    .zip(&fates)
                    .filter(|(_, f)| f.intact())
                    .map(|(&s, _)| s)
                    .sum::<u64>();
                match t.on_round(Some(&fates), pending.len()) {
                    ReliableProgress::Done => break,
                    ReliableProgress::Retry { delay } => prop_assert!(delay > 0.0),
                }
            }
            prop_assert_eq!(delivered_bytes, sizes.iter().sum::<u64>());
        }
    }
}
