//! Synthetic channel/link trace generators calibrated to Sec. II-B.
//!
//! The paper measured (Fig. 3) 802.11ac bandwidth between moving robots at
//! 0.1 s resolution for 5 minutes: indoors the capacity swings sharply
//! around ~100–150 Mbit/s; outdoors it is lower on average and frequently
//! collapses to almost zero because open areas reflect fewer signals and
//! foliage occludes the line of sight. Statistically, a ≥20 % relative
//! fluctuation happens about every 0.4 s and a ≥40 % one about every
//! 1.2 s.
//!
//! We model a trace as an AR(1) (Gauss-Markov) process around a mean,
//! multiplied by a two-state Markov fade process (line-of-sight vs
//! occluded). The calibration tests in this crate and the Fig. 3
//! experiment binary verify the generated traces reproduce the paper's
//! fluctuation statistics.

use rog_sim::Time;
use rog_tensor::rng::DetRng;
use serde::{Deserialize, Serialize};

use crate::Trace;

/// Slow per-link quality drift from varying communication distance: an
/// Ornstein-Uhlenbeck (mean-reverting) process with a time constant of
/// minutes, so one robot can be persistently far from the hotspot — the
/// "varying communication distance" of the paper's abstract, and the
/// reason SSP drift eventually exceeds any fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistanceProfile {
    /// Long-run mean link quality in `(0, 1]`.
    pub mean: f64,
    /// Mean-reversion time constant in seconds.
    pub time_const_s: f64,
    /// Stationary standard deviation of the process.
    pub sigma: f64,
    /// Hard clamp range.
    pub range: (f64, f64),
}

/// Fade (occlusion) episode model: a two-state Markov chain stepped every
/// trace sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FadeProfile {
    /// Probability per step of entering a fade while clear.
    pub enter_prob: f64,
    /// Probability per step of leaving a fade.
    pub exit_prob: f64,
    /// Multiplicative depth range `[lo, hi]` sampled per episode.
    pub depth: (f64, f64),
}

/// Generator parameters for one environment (indoor / outdoor / custom).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelProfile {
    /// Human-readable name ("indoor", "outdoor", ...).
    pub name: &'static str,
    /// Trace sample step in seconds (paper records at 0.1 s).
    pub dt: Time,
    /// Mean channel capacity in bit/s.
    pub mean_bps: f64,
    /// AR(1) coefficient in `[0, 1)`; higher = smoother.
    pub ar_coeff: f64,
    /// Innovation standard deviation, relative to the mean.
    pub rel_sigma: f64,
    /// Channel-wide fade process (affects total capacity).
    pub channel_fade: FadeProfile,
    /// Per-link fade process (occlusion between one robot and the AP).
    pub link_fade: FadeProfile,
    /// Rare, long per-link outages (a robot stuck behind an obstacle for
    /// seconds to tens of seconds — the extended near-zero stretches in
    /// the paper's Fig. 8).
    pub link_outage: FadeProfile,
    /// Slow per-link distance drift.
    pub link_distance: DistanceProfile,
    /// Floor on capacity, relative to the mean (thermal noise floor).
    pub rel_floor: f64,
}

impl ChannelProfile {
    /// The paper's indoor environment: laboratory with desks and
    /// separators; moderate instability, fades are shallow because walls
    /// reflect signals.
    pub fn indoor() -> Self {
        Self {
            name: "indoor",
            dt: 0.1,
            mean_bps: 120e6,
            ar_coeff: 0.82,
            rel_sigma: 0.14,
            channel_fade: FadeProfile {
                enter_prob: 0.010,
                exit_prob: 0.12,
                depth: (0.20, 0.55),
            },
            link_fade: FadeProfile {
                enter_prob: 0.007,
                exit_prob: 0.08,
                depth: (0.08, 0.45),
            },
            link_outage: FadeProfile {
                enter_prob: 0.0007,
                exit_prob: 0.006,
                depth: (0.05, 0.30),
            },
            link_distance: DistanceProfile {
                mean: 0.78,
                time_const_s: 150.0,
                sigma: 0.16,
                range: (0.30, 1.0),
            },
            rel_floor: 0.04,
        }
    }

    /// The paper's outdoor environment: campus garden with trees and
    /// bushes; higher instability, frequent collapses to ~0 Mbit/s
    /// because the open area lacks reflective walls.
    pub fn outdoor() -> Self {
        Self {
            name: "outdoor",
            dt: 0.1,
            mean_bps: 95e6,
            ar_coeff: 0.82,
            rel_sigma: 0.12,
            channel_fade: FadeProfile {
                enter_prob: 0.018,
                exit_prob: 0.10,
                depth: (0.02, 0.35),
            },
            link_fade: FadeProfile {
                enter_prob: 0.009,
                exit_prob: 0.035,
                depth: (0.01, 0.25),
            },
            link_outage: FadeProfile {
                enter_prob: 0.00045,
                exit_prob: 0.0012,
                depth: (0.006, 0.06),
            },
            link_distance: DistanceProfile {
                mean: 0.60,
                time_const_s: 180.0,
                sigma: 0.24,
                range: (0.10, 1.0),
            },
            rel_floor: 0.005,
        }
    }

    /// An idealized stable channel (no fluctuation), useful as the
    /// datacenter-network contrast in tests and ablations.
    pub fn stable(mean_bps: f64) -> Self {
        Self {
            name: "stable",
            dt: 0.1,
            mean_bps,
            ar_coeff: 0.0,
            rel_sigma: 0.0,
            channel_fade: FadeProfile {
                enter_prob: 0.0,
                exit_prob: 1.0,
                depth: (1.0, 1.0),
            },
            link_fade: FadeProfile {
                enter_prob: 0.0,
                exit_prob: 1.0,
                depth: (1.0, 1.0),
            },
            link_outage: FadeProfile {
                enter_prob: 0.0,
                exit_prob: 1.0,
                depth: (1.0, 1.0),
            },
            link_distance: DistanceProfile {
                mean: 1.0,
                time_const_s: 1.0,
                sigma: 0.0,
                range: (1.0, 1.0),
            },
            rel_floor: 0.9,
        }
    }

    /// Generates a total-capacity trace (bit/s) of at least `duration`
    /// seconds, deterministically from `seed`.
    pub fn generate(&self, seed: u64, duration: Time) -> Trace {
        self.generate_process(seed, duration, self.mean_bps, self.channel_fade)
    }

    /// Generates a per-link quality-factor trace in `(0, 1]` of at least
    /// `duration` seconds.
    ///
    /// The link factor multiplies the capacity share a flow from that
    /// device gets; it models distance/occlusion between one robot and
    /// the parameter-server hotspot.
    pub fn generate_link(&self, seed: u64, duration: Time) -> Trace {
        let base = self.generate_process(seed, duration, 1.0, self.link_fade);
        // Long-outage overlay: an independent Markov chain on the same
        // grid multiplying the base factor.
        let mut rng = DetRng::new(seed ^ 0x00A6E);
        let outage = self.link_outage;
        let dist = self.link_distance;
        // OU discretization over the trace grid.
        let a = (-self.dt / dist.time_const_s.max(1e-6)).exp();
        let innov = dist.sigma * (1.0 - a * a).max(0.0).sqrt();
        let mut d = rng.normal_with(dist.mean, dist.sigma);
        let mut in_out = false;
        let mut depth = 1.0;
        let overlaid: Vec<f64> = base
            .samples()
            .iter()
            .map(|&v| {
                d = dist.mean + a * (d - dist.mean) + rng.normal_with(0.0, innov);
                let d_clamped = d.clamp(dist.range.0, dist.range.1);
                if in_out {
                    if rng.chance(outage.exit_prob) {
                        in_out = false;
                    }
                } else if rng.chance(outage.enter_prob) {
                    in_out = true;
                    depth = rng.uniform_range(outage.depth.0, outage.depth.1 + 1e-12);
                }
                let f = if in_out { depth } else { 1.0 };
                (v * f * d_clamped).clamp(1e-3, 1.0)
            })
            .collect();
        Trace::from_samples(base.dt(), overlaid)
    }

    fn generate_process(&self, seed: u64, duration: Time, mean: f64, fade: FadeProfile) -> Trace {
        let n = (duration / self.dt).ceil().max(1.0) as usize + 1;
        let mut rng = DetRng::new(seed);
        let mut samples = Vec::with_capacity(n);
        // AR(1) around the mean, started at stationarity.
        let sigma = self.rel_sigma * mean;
        let stationary_sigma = if self.ar_coeff < 1.0 {
            sigma / (1.0 - self.ar_coeff * self.ar_coeff).sqrt()
        } else {
            sigma
        };
        let mut x = rng.normal_with(mean, stationary_sigma);
        let mut in_fade = false;
        let mut fade_depth = 1.0;
        let floor = self.rel_floor * mean;
        for _ in 0..n {
            x = mean + self.ar_coeff * (x - mean) + rng.normal_with(0.0, sigma);
            if in_fade {
                if rng.chance(fade.exit_prob) {
                    in_fade = false;
                }
            } else if rng.chance(fade.enter_prob) {
                in_fade = true;
                fade_depth = rng.uniform_range(fade.depth.0, fade.depth.1 + 1e-12);
            }
            let factor = if in_fade { fade_depth } else { 1.0 };
            samples.push((x * factor).max(floor));
        }
        Trace::from_samples(self.dt, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn generation_is_deterministic() {
        let p = ChannelProfile::outdoor();
        assert_eq!(p.generate(7, 10.0), p.generate(7, 10.0));
        assert_ne!(p.generate(7, 10.0), p.generate(8, 10.0));
    }

    #[test]
    fn means_are_roughly_calibrated() {
        let indoor = ChannelProfile::indoor().generate(1, 300.0);
        let outdoor = ChannelProfile::outdoor().generate(1, 300.0);
        assert!(indoor.mean() > outdoor.mean(), "indoor should be faster");
        assert!(indoor.mean() > 70e6 && indoor.mean() < 160e6);
        assert!(outdoor.mean() > 40e6 && outdoor.mean() < 120e6);
    }

    #[test]
    fn outdoor_reaches_near_zero_indoor_does_not_as_deeply() {
        let indoor = ChannelProfile::indoor().generate(2, 300.0);
        let outdoor = ChannelProfile::outdoor().generate(2, 300.0);
        // Paper: outdoors more frequently drops to ~0 Mbit/s.
        assert!(outdoor.min() < 0.05 * outdoor.mean());
        assert!(indoor.min() > 0.01 * indoor.mean());
    }

    #[test]
    fn fluctuation_statistics_match_paper_sec_2b() {
        // "On average a 20% fluctuation of bandwidth capacity happened
        // every 0.4s, and a 40% fluctuation typically happened every 1.2s."
        for profile in [ChannelProfile::indoor(), ChannelProfile::outdoor()] {
            let t = profile.generate(3, 300.0);
            let i20 = stats::mean_fluctuation_interval(&t, 0.20);
            let i40 = stats::mean_fluctuation_interval(&t, 0.40);
            assert!(
                (0.15..=0.9).contains(&i20),
                "{}: 20% interval {i20}",
                profile.name
            );
            assert!(
                (0.5..=2.8).contains(&i40),
                "{}: 40% interval {i40}",
                profile.name
            );
            assert!(i40 > i20, "{}: larger swings must be rarer", profile.name);
        }
    }

    #[test]
    fn link_factors_stay_in_unit_range() {
        let p = ChannelProfile::outdoor();
        let link = p.generate_link(11, 120.0);
        assert!(link.samples().iter().all(|&v| v > 0.0 && v <= 1.0));
    }

    #[test]
    fn stable_profile_is_flat() {
        let t = ChannelProfile::stable(100e6).generate(1, 10.0);
        assert!(t.max() - t.min() < 1e-6);
    }
}
