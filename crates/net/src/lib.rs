//! Wireless robotic-IoT channel model.
//!
//! Sec. II-B of the paper characterizes robotic IoT networks: devices
//! moving at 5–40 cm/s behind obstacles see *frequent, sharp, random*
//! bandwidth fluctuation — a ≥20 % swing about every 0.4 s and a ≥40 %
//! swing about every 1.2 s, with outdoor links additionally fading to
//! nearly 0 Mbit/s. Those statistics, not any specific radio, are what
//! cause the straggler effect ROG attacks; this crate reproduces them.
//!
//! Pieces:
//!
//! * [`Trace`] — a piecewise-constant time series (0.1 s steps, like the
//!   paper's iperf recording), used both for total channel capacity in
//!   bit/s and for per-link quality factors in `[0, 1]`.
//! * [`ChannelProfile`] — synthetic trace generators calibrated to the
//!   paper's indoor/outdoor measurements (Fig. 3), plus replay of
//!   externally recorded traces (the artifact's `tc` replay path).
//! * [`stats`] — the fluctuation statistics used to validate calibration
//!   and to regenerate Fig. 3's summary numbers.
//! * [`Channel`] — a shared-airtime channel (802.11 DCF approximation:
//!   `rate_i = capacity × link_i / n_active`) carrying [`Flow`]s composed
//!   of framed chunks (rows), with optional deadlines. Deadline expiry
//!   models ATP's `socket.settimeout` speculative transmission: the flow
//!   is cut, whole chunks delivered so far count, and the partial chunk is
//!   discarded.
//! * [`wire`] — framing constants (start/end markers, per-row headers)
//!   charged to every transmission, reproducing the management overhead
//!   the paper discusses in Sec. III-A — plus the concrete CRC32-
//!   checksummed, sequence-numbered frame codec used on lossy links.
//! * [`loss`] — a seeded, deterministic packet-loss model
//!   (Gilbert–Elliott burst loss + i.i.d. loss / corruption /
//!   duplication / reordering) applied per chunk inside
//!   [`Channel::advance_until`]; finished flows yield a
//!   [`DeliveryReport`] of per-chunk fates.
//! * [`reliability`] — the two delivery classes built on top: reliable
//!   (ack + backoff retransmit + dedup, for control and model-resync
//!   traffic) and best-effort (detect-and-drop, for gradient rows that
//!   RSP's staleness gate can absorb).
//!
//! # Example
//!
//! ```
//! use rog_net::{Channel, ChannelProfile, FlowSpec};
//!
//! let profile = ChannelProfile::outdoor();
//! let mut channel = Channel::new(profile.generate(42, 60.0), vec![
//!     profile.generate_link(43, 60.0),
//! ]);
//! let flow = channel.start_flow(0.0, FlowSpec::new(0, vec![50_000; 10]).with_deadline(0.5));
//! let events = channel.advance_until(2.0);
//! assert!(!events.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The vendored proptest shim's strategy-tuple expansion is deeply
// recursive; the wire-decoder fuzz properties push past the default 128.
#![recursion_limit = "256"]

mod channel;
pub mod fit;
pub mod io;
pub mod loss;
mod profile;
pub mod reliability;
pub mod stats;
mod trace;
pub mod wire;

pub use channel::{
    shard_link, Channel, DeliveryReport, Flow, FlowEvent, FlowId, FlowOutcome, FlowSpec, LinkId,
    SharingMode,
};
pub use loss::{ChunkFate, GeParams, LossConfig, LossModel};
pub use profile::{ChannelProfile, DistanceProfile, FadeProfile};
pub use reliability::{
    BackoffPolicy, DeliveryClass, ReliableProgress, ReliableTransfer, ReorderBuffer, SeqWindow,
};
pub use trace::Trace;
