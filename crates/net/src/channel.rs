//! Shared wireless channel carrying chunked flows.
//!
//! All devices in the paper's testbed hang off one 802.11ac hotspot, so
//! every push and pull contends for the same airtime (Sec. II-D: "the
//! devices typically share the same wireless channel, incurring traffic
//! volume proportional to the number of devices"). We approximate DCF
//! fairness: each active flow gets an equal share of airtime, and during
//! its share transmits at `capacity(t) × link_factor(t)` where the link
//! factor models that device's own occlusion/distance fading.
//!
//! Flows are sequences of *chunks* (gradient rows, with framing). A flow
//! may carry a deadline — ATP's speculative-transmission timeout. When the
//! deadline fires the flow is cut: chunks fully delivered by then count,
//! the partial chunk is discarded (its bytes are wasted airtime), exactly
//! like the `socket.settimeout` + unique-marker framing of Sec. V.

use std::collections::BTreeMap;

use rog_sim::Time;

use crate::loss::{ChunkFate, LossModel};
use crate::stats::LossEwma;
use crate::Trace;

/// Index of a device's link (assigned by the cluster builder).
pub type LinkId = usize;

/// Canonical link id of the `(worker, shard)` pair under a sharded
/// parameter plane: links are laid out worker-major, so worker `w`
/// owns the dense block `w * n_shards .. (w + 1) * n_shards` and
/// shard 0 keeps the link id an unsharded cluster would assign
/// (`shard_link(w, 1, 0) == w`). Every pair gets its own bandwidth
/// trace and loss streams; airtime contention still couples all links
/// through the shared [`Channel`] capacity.
pub fn shard_link(worker: usize, n_shards: usize, shard: usize) -> LinkId {
    debug_assert!(shard < n_shards.max(1));
    worker * n_shards.max(1) + shard
}

/// How concurrent flows share the channel.
///
/// 802.11 DCF gives every station an equal chance to *transmit a frame*.
/// Interpreted per unit time that is **airtime fairness**: each active
/// flow gets `1/n` of the airtime and moves at its own PHY rate during
/// its share. But because every frame carries the same payload, equal
/// frame chances actually equalize *throughput*, so one slow (distant)
/// station drags everyone down to its pace — the classic 802.11
/// *rate anomaly*. Both interpretations are available; the default is
/// airtime fairness, the anomaly mode is used by the MAC ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharingMode {
    /// Equal airtime; per-flow rate `capacity × link_i / n`.
    #[default]
    AirtimeFair,
    /// Equal throughput (802.11 rate anomaly): every flow moves at the
    /// harmonic-mean rate `1 / Σ_j 1/(capacity × link_j)`.
    ThroughputFair,
}

/// Opaque handle of a flow in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

/// Description of a transfer to start.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Which device's link carries the flow.
    pub link: LinkId,
    /// Byte size of each chunk, in transmission order (framing included).
    pub chunks: Vec<u64>,
    /// Absolute virtual time at which to cut the flow, if any.
    pub deadline: Option<Time>,
}

impl FlowSpec {
    /// Creates a flow of `chunks` bytes each over `link`, no deadline.
    pub fn new(link: LinkId, chunks: Vec<u64>) -> Self {
        Self {
            link,
            chunks,
            deadline: None,
        }
    }

    /// Sets an absolute-time deadline (speculative-transmission timeout).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().sum()
    }
}

/// Why a flow left the channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowOutcome {
    /// Every chunk was delivered.
    Completed,
    /// The deadline fired mid-flow; `chunks_done` whole chunks were
    /// delivered and the partially transmitted chunk (if any) was
    /// discarded.
    DeadlineReached {
        /// Number of complete chunks delivered.
        chunks_done: usize,
        /// Useful bytes delivered (sum of the complete chunks).
        bytes_done: u64,
    },
    /// The sender tore the flow down via [`Channel::cancel_flow`]
    /// (link blackout, peer crash). Nothing was acknowledged, so
    /// *every* transmitted byte — complete chunks included — counts as
    /// wasted airtime; a retry must retransmit from the start.
    Cancelled {
        /// Bytes that had been transmitted and are now discarded.
        bytes_wasted: u64,
    },
}

/// A flow event produced by [`Channel::advance_until`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEvent {
    /// Which flow.
    pub id: FlowId,
    /// Time at which the outcome occurred.
    pub at: Time,
    /// What happened.
    pub outcome: FlowOutcome,
}

/// Per-flow account of what the loss model did to each delivered
/// chunk, produced when a flow finishes (completion or deadline cut)
/// on a channel with a loss model installed.
///
/// Fetched once via [`Channel::take_report`]; `fates[i]` is the fate
/// of the `i`-th *complete* chunk in transmission order. Cancelled
/// flows produce no report — nothing was acknowledged.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryReport {
    /// The link the flow ran on.
    pub link: LinkId,
    /// Fate of each complete chunk, in transmission order.
    pub fates: Vec<ChunkFate>,
    /// Bytes of chunks that never arrived.
    pub lost_bytes: u64,
    /// Bytes of chunks that arrived but failed their CRC check.
    pub corrupt_bytes: u64,
}

impl DeliveryReport {
    /// True when every chunk arrived usable.
    pub fn all_intact(&self) -> bool {
        self.fates.iter().all(|f| f.intact())
    }

    /// Whether chunk `i` arrived usable (chunks beyond the report are
    /// chunks that were never transmitted, reported as not intact).
    pub fn intact(&self, i: usize) -> bool {
        self.fates.get(i).is_some_and(|f| f.intact())
    }

    /// Number of chunks that were lost or corrupt.
    pub fn bad_chunks(&self) -> usize {
        self.fates.iter().filter(|f| !f.intact()).count()
    }

    /// Number of chunks the loss model dropped in flight.
    pub fn lost_chunks(&self) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, ChunkFate::Lost))
            .count()
    }

    /// Number of chunks that arrived but failed their CRC check.
    pub fn corrupt_chunks(&self) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, ChunkFate::Corrupt))
            .count()
    }
}

/// An in-flight transfer.
#[derive(Debug, Clone)]
pub struct Flow {
    link: LinkId,
    /// Cumulative chunk byte boundaries; `prefix[i]` = bytes of the first
    /// `i` chunks. `prefix[len]` is the flow total.
    prefix: Vec<u64>,
    bytes_done: f64,
    deadline: Option<Time>,
    started_at: Time,
    /// Fates drawn so far, one per completed chunk (empty when the
    /// channel has no loss model).
    fates: Vec<ChunkFate>,
}

impl Flow {
    fn total(&self) -> u64 {
        *self.prefix.last().expect("prefix is never empty")
    }

    fn remaining(&self) -> f64 {
        self.total() as f64 - self.bytes_done
    }

    /// Number of whole chunks covered by `bytes_done`.
    fn chunks_done(&self) -> usize {
        // prefix is sorted; find the last boundary <= bytes_done (+tol).
        let done = self.bytes_done + 0.25;
        self.prefix[1..]
            .iter()
            .take_while(|&&b| b as f64 <= done)
            .count()
    }
}

/// The shared wireless channel.
///
/// See the crate docs for the model. All methods take/return absolute
/// virtual time; time only moves forward via [`Channel::advance_until`].
#[derive(Debug, Clone)]
pub struct Channel {
    capacity: Trace,
    links: Vec<Trace>,
    flows: BTreeMap<FlowId, Flow>,
    now: Time,
    next_id: u64,
    useful_bytes: f64,
    wasted_bytes: f64,
    sharing: SharingMode,
    loss: Option<LossModel>,
    reports: BTreeMap<FlowId, DeliveryReport>,
    lost_bytes: f64,
    corrupt_bytes: f64,
    duplicated_bytes: f64,
    offered_bytes: f64,
    loss_est: BTreeMap<LinkId, LossEwma>,
}

const EPS: Time = 1e-9;
/// Byte-resolution tolerance for completion detection.
const BYTE_TOL: f64 = 0.25;

impl Channel {
    /// Creates a channel with a total-capacity trace (bit/s) and one
    /// quality-factor trace per device link.
    pub fn new(capacity: Trace, links: Vec<Trace>) -> Self {
        Self {
            capacity,
            links,
            flows: BTreeMap::new(),
            now: 0.0,
            next_id: 0,
            useful_bytes: 0.0,
            wasted_bytes: 0.0,
            sharing: SharingMode::default(),
            loss: None,
            reports: BTreeMap::new(),
            lost_bytes: 0.0,
            corrupt_bytes: 0.0,
            duplicated_bytes: 0.0,
            offered_bytes: 0.0,
            loss_est: BTreeMap::new(),
        }
    }

    /// Selects the MAC sharing model (see [`SharingMode`]).
    #[must_use]
    pub fn with_sharing(mut self, sharing: SharingMode) -> Self {
        self.sharing = sharing;
        self
    }

    /// Installs a packet-loss model (see [`LossModel`]). Builder form
    /// of [`Channel::set_loss_model`].
    #[must_use]
    pub fn with_loss(mut self, model: LossModel) -> Self {
        self.set_loss_model(Some(model));
        self
    }

    /// Installs or removes the packet-loss model. With `None` (the
    /// default) every chunk is delivered intact and the channel
    /// behaves byte-identically to a pre-loss-model build.
    pub fn set_loss_model(&mut self, model: Option<LossModel>) {
        self.loss = model;
    }

    /// Whether a loss model is installed (delivery reports are only
    /// produced when one is).
    pub fn loss_enabled(&self) -> bool {
        self.loss.is_some()
    }

    /// The active MAC sharing model.
    pub fn sharing(&self) -> SharingMode {
        self.sharing
    }

    /// Current channel time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of flows in flight.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Useful payload bytes delivered so far (complete chunks only).
    pub fn useful_bytes(&self) -> f64 {
        self.useful_bytes
    }

    /// Bytes spent on chunks that were cut by a deadline and discarded.
    pub fn wasted_bytes(&self) -> f64 {
        self.wasted_bytes
    }

    /// Bytes of chunks the loss model dropped in flight.
    pub fn lost_bytes(&self) -> f64 {
        self.lost_bytes
    }

    /// Bytes of chunks that arrived but failed their CRC check.
    pub fn corrupt_bytes(&self) -> f64 {
        self.corrupt_bytes
    }

    /// Bytes delivered more than once (receiver-side dedup absorbs
    /// them; informational, not part of the conservation identity).
    pub fn duplicated_bytes(&self) -> f64 {
        self.duplicated_bytes
    }

    /// Total bytes of airtime consumed by flows that have terminated
    /// (completed, deadline-cut, or cancelled). Every offered byte is
    /// accounted exactly once as useful, wasted, lost, or corrupt —
    /// see [`Channel::byte_conservation_error`].
    pub fn offered_bytes(&self) -> f64 {
        self.offered_bytes
    }

    /// Absolute error of the byte-conservation identity
    /// `useful + wasted + lost + corrupt == offered`.
    ///
    /// Nonzero only by floating-point rounding and the sub-byte
    /// completion tolerance; the run-level invariant watchdog asserts
    /// it stays below ~1 byte per terminated flow.
    pub fn byte_conservation_error(&self) -> f64 {
        let accounted =
            self.useful_bytes + self.wasted_bytes + self.lost_bytes + self.corrupt_bytes;
        (accounted - self.offered_bytes).abs()
    }

    /// Fetches (and consumes) the delivery report of a finished flow.
    ///
    /// `None` when the channel has no loss model, when the flow was
    /// cancelled, or when the report was already taken — callers can
    /// treat `None` as "everything transmitted arrived intact".
    pub fn take_report(&mut self, id: FlowId) -> Option<DeliveryReport> {
        self.reports.remove(&id)
    }

    /// EWMA estimate of the chunk loss+corruption rate on `link`,
    /// updated from delivery reports ([`LossEwma`]); `0.0` for a link
    /// with no observations yet.
    pub fn estimated_loss_rate(&self, link: LinkId) -> f64 {
        self.loss_est.get(&link).map_or(0.0, |e| e.rate())
    }

    /// Loss-discounted throughput estimate for ATP's MTA computation:
    /// [`Channel::estimated_rate`] scaled by the link's estimated
    /// delivery probability. Identical to `estimated_rate` on a clean
    /// (or never-observed) link, so loss-free planning is unchanged.
    pub fn estimated_goodput_rate(&self, link: LinkId) -> f64 {
        self.estimated_rate(link) * (1.0 - self.estimated_loss_rate(link))
    }

    /// Instantaneous un-shared link bandwidth in bit/s (capacity times
    /// the link's fade factor) — what a passive monitor like `iw` would
    /// report on that device (paper Sec. VI-B).
    pub fn link_rate_bps(&self, link: LinkId) -> f64 {
        self.capacity.value_at(self.now) * self.link_factor(link, self.now)
    }

    /// Instantaneous rate (bytes/s) a flow on `link` would get right now
    /// if it had to share with the current active flows plus itself.
    ///
    /// The estimate is purely model-based — trace capacity × the link's
    /// fade factor, split over `active_flows() + 1` — and does **not**
    /// depend on bytes previously observed on the link. In particular
    /// it is well defined for a link that has never carried a flow:
    ///
    /// * a link whose fade trace is currently `0.0` (deep fade or
    ///   blackout) estimates `0.0` bytes/s, never a division by zero —
    ///   callers planning a transfer must treat this as "do not send";
    /// * a `link` index with no registered trace falls back to a fade
    ///   factor of `1.0` (an ideal link), mirroring
    ///   [`Channel::link_rate_bps`].
    pub fn estimated_rate(&self, link: LinkId) -> f64 {
        let n = (self.flows.len() + 1) as f64;
        self.capacity.value_at(self.now) * self.link_factor(link, self.now) / 8.0 / n
    }

    fn link_factor(&self, link: LinkId, t: Time) -> f64 {
        self.links.get(link).map_or(1.0, |tr| tr.value_at(t))
    }

    /// Starts a flow at time `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` precedes channel time, or if other flows are in
    /// flight and `start` is ahead of channel time (the caller must first
    /// [`Channel::advance_until`] `start` and handle any events).
    pub fn start_flow(&mut self, start: Time, spec: FlowSpec) -> FlowId {
        assert!(
            start >= self.now - EPS,
            "flow starts in the past: {start} < {}",
            self.now
        );
        if start > self.now + EPS {
            assert!(
                self.flows.is_empty(),
                "advance the channel to the start time before starting a flow"
            );
            self.now = start;
        }
        if let Some(d) = spec.deadline {
            assert!(d >= self.now - EPS, "deadline is already in the past");
        }
        let mut prefix = Vec::with_capacity(spec.chunks.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &c in &spec.chunks {
            acc += c;
            prefix.push(acc);
        }
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                link: spec.link,
                prefix,
                bytes_done: 0.0,
                deadline: spec.deadline,
                started_at: self.now,
                fates: Vec::new(),
            },
        );
        id
    }

    /// Time a flow has spent in flight so far.
    pub fn flow_age(&self, id: FlowId) -> Option<Time> {
        self.flows.get(&id).map(|f| self.now - f.started_at)
    }

    /// Tears down an in-flight flow at the current channel time (the
    /// primitive behind link-blackout and crash faults).
    ///
    /// Unlike a deadline cut, a cancellation delivers *nothing*: the
    /// receiver never acknowledges, so even complete chunks already on
    /// the air are discarded and charged to [`Channel::wasted_bytes`].
    /// The freed airtime is re-shared among the remaining flows from
    /// this instant on. Returns the terminal [`FlowEvent`]
    /// (outcome [`FlowOutcome::Cancelled`]), or `None` if the flow is
    /// unknown or already finished — cancelling twice is harmless.
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<FlowEvent> {
        let f = self.flows.remove(&id)?;
        self.wasted_bytes += f.bytes_done;
        self.offered_bytes += f.bytes_done;
        Some(FlowEvent {
            id,
            at: self.now,
            outcome: FlowOutcome::Cancelled {
                bytes_wasted: f.bytes_done.round() as u64,
            },
        })
    }

    /// Splits the first `chunks_done` chunks of a finished flow into
    /// useful / lost / corrupt bytes according to their fates, updates
    /// the link's loss estimator, and files a [`DeliveryReport`].
    ///
    /// With no loss model installed this reduces to one addition of
    /// `prefix[chunks_done]` to `useful_bytes` — the exact arithmetic
    /// of the pre-loss-model channel, so loss-free runs stay
    /// byte-identical. The same holds when a model is installed but
    /// every fate is `Delivered`, because the per-class byte sums are
    /// integers accumulated in `u64` and added to each counter once.
    fn settle_chunks(&mut self, id: FlowId, f: &Flow, chunks_done: usize) {
        if self.loss.is_none() {
            self.useful_bytes += f.prefix[chunks_done] as f64;
            return;
        }
        debug_assert_eq!(f.fates.len(), chunks_done, "one fate per complete chunk");
        let (mut useful, mut lost, mut corrupt, mut dup) = (0u64, 0u64, 0u64, 0u64);
        for i in 0..chunks_done {
            let size = f.prefix[i + 1] - f.prefix[i];
            match f.fates[i] {
                ChunkFate::Delivered | ChunkFate::Reordered => useful += size,
                ChunkFate::Duplicated => {
                    useful += size;
                    dup += size;
                }
                ChunkFate::Lost => lost += size,
                ChunkFate::Corrupt => corrupt += size,
            }
        }
        self.useful_bytes += useful as f64;
        self.lost_bytes += lost as f64;
        self.corrupt_bytes += corrupt as f64;
        self.duplicated_bytes += dup as f64;
        let report = DeliveryReport {
            link: f.link,
            fates: f.fates[..chunks_done].to_vec(),
            lost_bytes: lost,
            corrupt_bytes: corrupt,
        };
        self.loss_est
            .entry(f.link)
            .or_insert_with(|| LossEwma::new(LossEwma::DEFAULT_ALPHA))
            .observe(report.bad_chunks(), chunks_done);
        self.reports.insert(id, report);
    }

    /// Advances the channel toward `t`, stopping at the first instant at
    /// which one or more flow events (completion / deadline) occur.
    ///
    /// Returns all events at that instant; if none occur before `t`, the
    /// channel ends at `t` with an empty vector. Progress applied is
    /// exact: piecewise-constant integration over capacity and link
    /// breakpoints, with airtime re-shared whenever the active set
    /// changes.
    pub fn advance_until(&mut self, t: Time) -> Vec<FlowEvent> {
        let mut events = Vec::new();
        let mut guard = 0u64;
        while self.now < t - EPS {
            guard += 1;
            assert!(
                guard < 50_000_000,
                "channel integration stuck at t={} (target {t}, {} flows)",
                self.now,
                self.flows.len()
            );
            if self.flows.is_empty() {
                self.now = t;
                return events;
            }
            // Segment of constant rates: bounded by trace breakpoints.
            let mut seg_end = t.min(self.capacity.next_breakpoint_after(self.now));
            for f in self.flows.values() {
                if let Some(link) = self.links.get(f.link) {
                    seg_end = seg_end.min(link.next_breakpoint_after(self.now));
                }
            }
            // Constant per-flow rates in this segment.
            let n = self.flows.len() as f64;
            let cap = self.capacity.value_at(self.now);
            let rates: BTreeMap<FlowId, f64> = match self.sharing {
                SharingMode::AirtimeFair => self
                    .flows
                    .iter()
                    .map(|(&id, f)| (id, cap * self.link_factor(f.link, self.now) / 8.0 / n))
                    .collect(),
                SharingMode::ThroughputFair => {
                    // Rate anomaly: equal per-flow throughput set by the
                    // harmonic mean of the stations' PHY rates.
                    let inv_sum: f64 = self
                        .flows
                        .values()
                        .map(|f| 1.0 / (cap * self.link_factor(f.link, self.now)).max(1e-3))
                        .sum();
                    let common = 1.0 / inv_sum / 8.0;
                    self.flows.keys().map(|&id| (id, common)).collect()
                }
            };
            // Exact per-flow finish times, and the earliest event inside
            // the segment.
            let fins: BTreeMap<FlowId, Time> = self
                .flows
                .iter()
                .map(|(&id, f)| {
                    let rate = rates[&id];
                    let fin = if rate > 0.0 {
                        self.now + f.remaining().max(0.0) / rate
                    } else {
                        f64::INFINITY
                    };
                    (id, fin)
                })
                .collect();
            let mut t_event = f64::INFINITY;
            for (&id, f) in &self.flows {
                t_event = t_event.min(fins[&id]);
                if let Some(d) = f.deadline {
                    t_event = t_event.min(d.max(self.now));
                }
            }
            let step_to = seg_end.min(t_event);
            let dt = (step_to - self.now).max(0.0);
            for (id, f) in self.flows.iter_mut() {
                if fins[id] <= step_to + EPS {
                    // Snap to exact completion: floating-point increments
                    // can otherwise fall below the ulp of `bytes_done`
                    // and stall the integration forever.
                    f.bytes_done = f.total() as f64;
                } else {
                    f.bytes_done = (f.bytes_done + rates[id] * dt).min(f.total() as f64);
                }
            }
            self.now = step_to;
            // Draw loss fates for chunks the fluid model just
            // completed, in FlowId order (deterministic: single
            // integration thread, ordered map).
            if let Some(model) = self.loss.as_mut() {
                for f in self.flows.values_mut() {
                    let done = f.chunks_done();
                    while f.fates.len() < done {
                        f.fates.push(model.chunk_fate(f.link, step_to));
                    }
                }
            }
            // Collect events at this instant.
            let done_ids: Vec<FlowId> = self
                .flows
                .iter()
                .filter(|(_, f)| {
                    f.remaining() <= BYTE_TOL || f.deadline.is_some_and(|d| self.now >= d - EPS)
                })
                .map(|(&id, _)| id)
                .collect();
            for id in done_ids {
                let f = self.flows.remove(&id).expect("flow exists");
                let outcome = if f.remaining() <= BYTE_TOL {
                    let chunks_done = f.prefix.len() - 1;
                    self.settle_chunks(id, &f, chunks_done);
                    self.offered_bytes += f.total() as f64;
                    FlowOutcome::Completed
                } else {
                    let chunks_done = f.chunks_done();
                    let bytes_done = f.prefix[chunks_done];
                    self.settle_chunks(id, &f, chunks_done);
                    self.wasted_bytes += f.bytes_done - bytes_done as f64;
                    self.offered_bytes += f.bytes_done;
                    FlowOutcome::DeadlineReached {
                        chunks_done,
                        bytes_done,
                    }
                };
                events.push(FlowEvent {
                    id,
                    at: self.now,
                    outcome,
                });
            }
            if !events.is_empty() {
                return events;
            }
        }
        self.now = self.now.max(t);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_channel(bps: f64, n_links: usize) -> Channel {
        Channel::new(
            Trace::constant(bps),
            (0..n_links).map(|_| Trace::constant(1.0)).collect(),
        )
    }

    #[test]
    fn single_flow_takes_bytes_over_bandwidth() {
        // 80 Mbit/s = 10 MB/s; 5 MB should take 0.5 s.
        let mut ch = flat_channel(80e6, 1);
        let id = ch.start_flow(0.0, FlowSpec::new(0, vec![5_000_000]));
        let evs = ch.advance_until(10.0);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].id, id);
        assert_eq!(evs[0].outcome, FlowOutcome::Completed);
        assert!((evs[0].at - 0.5).abs() < 1e-3, "at {}", evs[0].at);
    }

    #[test]
    fn two_flows_share_airtime() {
        let mut ch = flat_channel(80e6, 2);
        ch.start_flow(0.0, FlowSpec::new(0, vec![5_000_000]));
        ch.start_flow(0.0, FlowSpec::new(1, vec![5_000_000]));
        let evs = ch.advance_until(10.0);
        // Both halve the rate: each finishes at ~1.0 s, simultaneously.
        assert_eq!(evs.len(), 2);
        assert!((evs[0].at - 1.0).abs() < 1e-3, "at {}", evs[0].at);
    }

    #[test]
    fn remaining_flow_speeds_up_after_completion() {
        let mut ch = flat_channel(80e6, 2);
        ch.start_flow(0.0, FlowSpec::new(0, vec![2_500_000]));
        let big = ch.start_flow(0.0, FlowSpec::new(1, vec![7_500_000]));
        let evs = ch.advance_until(10.0);
        assert_eq!(evs.len(), 1);
        assert!(
            (evs[0].at - 0.5).abs() < 1e-3,
            "small done at {}",
            evs[0].at
        );
        let evs = ch.advance_until(10.0);
        assert_eq!(evs[0].id, big);
        // Big flow: 2.5MB done in first 0.5s (shared), 5MB left at full
        // 10MB/s → total 1.0s.
        assert!((evs[0].at - 1.0).abs() < 1e-3, "big done at {}", evs[0].at);
    }

    #[test]
    fn deadline_cuts_flow_and_discards_partial_chunk() {
        let mut ch = flat_channel(80e6, 1); // 10 MB/s
                                            // 10 chunks of 1 MB; deadline at 0.55 s → 5.5 MB transferred,
                                            // 5 complete chunks, half a chunk wasted.
        let id = ch.start_flow(
            0.0,
            FlowSpec::new(0, vec![1_000_000; 10]).with_deadline(0.55),
        );
        let evs = ch.advance_until(10.0);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].id, id);
        match evs[0].outcome {
            FlowOutcome::DeadlineReached {
                chunks_done,
                bytes_done,
            } => {
                assert_eq!(chunks_done, 5);
                assert_eq!(bytes_done, 5_000_000);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!((evs[0].at - 0.55).abs() < 1e-9);
        assert!(ch.wasted_bytes() > 400_000.0 && ch.wasted_bytes() < 600_000.0);
    }

    #[test]
    fn deadline_after_completion_is_moot() {
        let mut ch = flat_channel(80e6, 1);
        ch.start_flow(0.0, FlowSpec::new(0, vec![1_000_000]).with_deadline(5.0));
        let evs = ch.advance_until(10.0);
        assert_eq!(evs[0].outcome, FlowOutcome::Completed);
        assert!(evs[0].at < 0.2);
    }

    #[test]
    fn link_factor_scales_rate() {
        let mut ch = Channel::new(
            Trace::constant(80e6),
            vec![Trace::constant(0.5)], // device sees half capacity
        );
        ch.start_flow(0.0, FlowSpec::new(0, vec![5_000_000]));
        let evs = ch.advance_until(10.0);
        assert!((evs[0].at - 1.0).abs() < 1e-3);
    }

    #[test]
    fn varying_capacity_is_integrated_exactly() {
        // 0-1s: 80 Mb/s (10 MB/s), 1-2s: 8 Mb/s (1 MB/s), repeating.
        let cap = Trace::from_samples(1.0, vec![80e6, 8e6]);
        let mut ch = Channel::new(cap, vec![Trace::constant(1.0)]);
        // 11 MB: 10 MB in first second, 1 MB in the next → done at 2.0 s.
        ch.start_flow(0.0, FlowSpec::new(0, vec![11_000_000]));
        let evs = ch.advance_until(10.0);
        assert!((evs[0].at - 2.0).abs() < 1e-3, "at {}", evs[0].at);
    }

    #[test]
    fn empty_flow_completes_immediately() {
        let mut ch = flat_channel(80e6, 1);
        ch.start_flow(0.0, FlowSpec::new(0, vec![]));
        let evs = ch.advance_until(1.0);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].outcome, FlowOutcome::Completed);
        assert!(evs[0].at < 1e-6);
    }

    #[test]
    fn advance_with_no_flows_just_moves_time() {
        let mut ch = flat_channel(80e6, 1);
        assert!(ch.advance_until(3.0).is_empty());
        assert_eq!(ch.now(), 3.0);
    }

    #[test]
    fn events_do_not_pass_queue_horizon() {
        let mut ch = flat_channel(80e6, 1);
        ch.start_flow(0.0, FlowSpec::new(0, vec![5_000_000]));
        // Horizon at 0.2 s, completion would be at 0.5 s.
        let evs = ch.advance_until(0.2);
        assert!(evs.is_empty());
        assert_eq!(ch.now(), 0.2);
        let evs = ch.advance_until(1.0);
        assert!((evs[0].at - 0.5).abs() < 1e-3);
    }

    #[test]
    fn zero_deadline_flow_delivers_nothing() {
        let mut ch = flat_channel(80e6, 1);
        let id = ch.start_flow(0.0, FlowSpec::new(0, vec![1_000_000; 3]).with_deadline(0.0));
        let evs = ch.advance_until(1.0);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].id, id);
        assert_eq!(
            evs[0].outcome,
            FlowOutcome::DeadlineReached {
                chunks_done: 0,
                bytes_done: 0
            }
        );
    }

    #[test]
    fn rate_anomaly_drags_fast_stations_down() {
        // Two stations, one at 10% link quality. Airtime-fair: the fast
        // one finishes quickly. Throughput-fair (rate anomaly): both
        // move at the harmonic rate, so the fast one is dragged down.
        let cap = Trace::constant(80e6);
        let links = vec![Trace::constant(1.0), Trace::constant(0.1)];
        let mut fair = Channel::new(cap.clone(), links.clone());
        fair.start_flow(0.0, FlowSpec::new(0, vec![2_000_000]));
        fair.start_flow(0.0, FlowSpec::new(1, vec![2_000_000]));
        let fast_fair = fair.advance_until(100.0)[0].at;

        let mut anomaly = Channel::new(cap, links).with_sharing(SharingMode::ThroughputFair);
        anomaly.start_flow(0.0, FlowSpec::new(0, vec![2_000_000]));
        anomaly.start_flow(0.0, FlowSpec::new(1, vec![2_000_000]));
        let evs = anomaly.advance_until(100.0);
        // Under the anomaly both finish together, far later than the
        // fast station would alone.
        assert_eq!(evs.len(), 2);
        let fast_anomaly = evs[0].at;
        assert!(
            fast_anomaly > 3.0 * fast_fair,
            "anomaly should slow the fast station: {fast_fair} vs {fast_anomaly}"
        );
        // Harmonic rate check: 1/(1/10 + 1/1) MB/s = 0.909 MB/s →
        // 2 MB in ~2.2 s.
        assert!((fast_anomaly - 2.2).abs() < 0.1, "at {fast_anomaly}");
    }

    #[test]
    #[should_panic(expected = "starts in the past")]
    fn starting_in_the_past_panics() {
        let mut ch = flat_channel(80e6, 1);
        ch.advance_until(5.0);
        ch.start_flow(1.0, FlowSpec::new(0, vec![10]));
    }

    #[test]
    fn cancel_mid_transmission_wastes_all_transferred_bytes() {
        // 10 MB/s, two 1 MB chunks; cancel at 0.15 s → 1.5 MB on the
        // air, one chunk complete — but cancellation discards even that.
        let mut ch = flat_channel(80e6, 1);
        let id = ch.start_flow(0.0, FlowSpec::new(0, vec![1_000_000, 1_000_000]));
        assert!(ch.advance_until(0.15).is_empty());
        let ev = ch.cancel_flow(id).expect("in flight");
        assert_eq!(ev.id, id);
        assert_eq!(ev.at, 0.15);
        match ev.outcome {
            FlowOutcome::Cancelled { bytes_wasted } => {
                assert!(
                    (bytes_wasted as f64 - 1_500_000.0).abs() < 1_000.0,
                    "wasted {bytes_wasted}"
                );
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(ch.useful_bytes(), 0.0, "nothing was acknowledged");
        assert!((ch.wasted_bytes() - 1_500_000.0).abs() < 1_000.0);
        assert_eq!(ch.active_flows(), 0);
        assert_eq!(ch.flow_age(id), None);
        // A later advance produces no stale event for the cancelled flow.
        assert!(ch.advance_until(10.0).is_empty());
    }

    #[test]
    fn cancel_frees_airtime_for_survivors() {
        let mut ch = flat_channel(80e6, 2); // 10 MB/s total
        let doomed = ch.start_flow(0.0, FlowSpec::new(0, vec![5_000_000]));
        ch.start_flow(0.0, FlowSpec::new(1, vec![5_000_000]));
        assert!(ch.advance_until(0.5).is_empty()); // each at 2.5 MB
        ch.cancel_flow(doomed).expect("in flight");
        let evs = ch.advance_until(10.0);
        // Survivor: 2.5 MB left at full 10 MB/s → done at 0.75 s.
        assert_eq!(evs.len(), 1);
        assert!((evs[0].at - 0.75).abs() < 1e-3, "at {}", evs[0].at);
        assert_eq!(evs[0].outcome, FlowOutcome::Completed);
        // Accounting splits: survivor useful, cancelled wasted.
        assert!((ch.useful_bytes() - 5_000_000.0).abs() < 1.0);
        assert!((ch.wasted_bytes() - 2_500_000.0).abs() < 1_000.0);
    }

    #[test]
    fn cancel_unknown_or_finished_flow_is_a_no_op() {
        let mut ch = flat_channel(80e6, 1);
        let id = ch.start_flow(0.0, FlowSpec::new(0, vec![1_000]));
        let evs = ch.advance_until(1.0);
        assert_eq!(evs[0].outcome, FlowOutcome::Completed);
        assert_eq!(ch.cancel_flow(id), None, "already completed");
        let (useful, wasted) = (ch.useful_bytes(), ch.wasted_bytes());
        assert_eq!(ch.cancel_flow(id), None, "double cancel");
        assert_eq!(ch.useful_bytes(), useful);
        assert_eq!(ch.wasted_bytes(), wasted);
    }

    #[test]
    fn cancel_before_any_progress_wastes_nothing() {
        let mut ch = flat_channel(80e6, 1);
        let id = ch.start_flow(0.0, FlowSpec::new(0, vec![1_000_000]));
        let ev = ch.cancel_flow(id).expect("in flight");
        assert_eq!(ev.outcome, FlowOutcome::Cancelled { bytes_wasted: 0 });
        assert_eq!(ch.wasted_bytes(), 0.0);
    }

    #[test]
    fn off_loss_model_is_byte_identical_to_no_model() {
        use crate::loss::{LossConfig, LossModel};
        let run = |with_model: bool| {
            let mut ch = flat_channel(80e6, 2);
            if with_model {
                ch.set_loss_model(Some(LossModel::build(&LossConfig::off(), 2, 100.0)));
            }
            ch.start_flow(0.0, FlowSpec::new(0, vec![1_000_000; 5]));
            ch.start_flow(0.0, FlowSpec::new(1, vec![700_000; 3]).with_deadline(0.33));
            let mut evs = Vec::new();
            loop {
                let batch = ch.advance_until(100.0);
                if batch.is_empty() {
                    break;
                }
                evs.extend(batch);
            }
            (evs, ch.useful_bytes(), ch.wasted_bytes())
        };
        let (evs_a, useful_a, wasted_a) = run(false);
        let (evs_b, useful_b, wasted_b) = run(true);
        assert_eq!(evs_a, evs_b);
        assert_eq!(useful_a.to_bits(), useful_b.to_bits());
        assert_eq!(wasted_a.to_bits(), wasted_b.to_bits());
    }

    #[test]
    fn lossy_flow_reports_fates_and_accounts_bytes() {
        use crate::loss::{ChunkFate, LossConfig, LossModel};
        let mut ch =
            flat_channel(80e6, 1).with_loss(LossModel::build(&LossConfig::iid(42, 0.4), 1, 100.0));
        assert!(ch.loss_enabled());
        let id = ch.start_flow(0.0, FlowSpec::new(0, vec![100_000; 50]));
        let evs = ch.advance_until(100.0);
        assert_eq!(evs.len(), 1);
        // The fluid completion is unchanged: loss costs airtime on the
        // receiver side (drops), not transmission time.
        assert_eq!(evs[0].outcome, FlowOutcome::Completed);
        let rep = ch.take_report(id).expect("report for finished flow");
        assert_eq!(rep.fates.len(), 50);
        assert_eq!(rep.link, 0);
        let lost = rep.fates.iter().filter(|f| **f == ChunkFate::Lost).count();
        assert!(lost > 5, "expect some losses at 40%: {lost}");
        assert!(!rep.all_intact());
        assert_eq!(rep.lost_bytes, lost as u64 * 100_000);
        assert_eq!(ch.lost_bytes(), rep.lost_bytes as f64);
        assert_eq!(
            ch.useful_bytes() + ch.lost_bytes() + ch.corrupt_bytes(),
            5_000_000.0
        );
        assert!(ch.byte_conservation_error() < 1.0);
        // Taking twice yields nothing.
        assert!(ch.take_report(id).is_none());
        // EWMA estimator saw the round.
        let est = ch.estimated_loss_rate(0);
        assert!((est - lost as f64 / 50.0).abs() < 1e-12);
        assert!(ch.estimated_goodput_rate(0) < ch.estimated_rate(0));
        assert_eq!(ch.estimated_loss_rate(9), 0.0, "unobserved link clean");
    }

    #[test]
    fn deadline_cut_with_loss_conserves_bytes() {
        use crate::loss::{LossConfig, LossModel};
        let mut ch =
            flat_channel(80e6, 1).with_loss(LossModel::build(&LossConfig::iid(7, 0.3), 1, 100.0));
        // 10 MB/s, deadline at 0.55 s → ~5.5 MB offered.
        let id = ch.start_flow(
            0.0,
            FlowSpec::new(0, vec![1_000_000; 10]).with_deadline(0.55),
        );
        let evs = ch.advance_until(100.0);
        assert!(matches!(
            evs[0].outcome,
            FlowOutcome::DeadlineReached { chunks_done: 5, .. }
        ));
        let rep = ch.take_report(id).expect("report");
        assert_eq!(rep.fates.len(), 5, "only complete chunks get fates");
        assert!(ch.byte_conservation_error() < 1.0);
        assert!((ch.offered_bytes() - 5_500_000.0).abs() < 1_000.0);
    }

    #[test]
    fn cancelled_flow_produces_no_report_but_conserves_bytes() {
        use crate::loss::{LossConfig, LossModel};
        let mut ch =
            flat_channel(80e6, 1).with_loss(LossModel::build(&LossConfig::iid(3, 0.5), 1, 100.0));
        let id = ch.start_flow(0.0, FlowSpec::new(0, vec![1_000_000; 4]));
        assert!(ch.advance_until(0.15).is_empty());
        ch.cancel_flow(id).expect("in flight");
        assert!(ch.take_report(id).is_none());
        assert!(ch.byte_conservation_error() < 1.0);
        assert!((ch.offered_bytes() - 1_500_000.0).abs() < 1_000.0);
    }

    #[test]
    fn lossy_runs_are_deterministic() {
        use crate::loss::{LossConfig, LossModel};
        let cfg = LossConfig {
            seed: 11,
            iid_loss: 0.15,
            corrupt: 0.05,
            duplicate: 0.05,
            reorder: 0.05,
            ge: Some(crate::loss::GeParams::bursty(0.1)),
        };
        let run = || {
            let mut ch = flat_channel(80e6, 2).with_loss(LossModel::build(&cfg, 2, 100.0));
            let a = ch.start_flow(0.0, FlowSpec::new(0, vec![200_000; 20]));
            let b = ch.start_flow(0.0, FlowSpec::new(1, vec![300_000; 10]));
            while !ch.advance_until(100.0).is_empty() {}
            (
                ch.take_report(a),
                ch.take_report(b),
                ch.useful_bytes().to_bits(),
                ch.lost_bytes().to_bits(),
                ch.corrupt_bytes().to_bits(),
                ch.duplicated_bytes().to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn estimated_rate_on_untouched_links_is_model_based() {
        // Three links; none has ever carried a flow.
        let mut ch = Channel::new(
            Trace::constant(80e6), // 10 MB/s
            vec![
                Trace::constant(1.0),
                Trace::constant(0.0), // blacked-out link
                Trace::constant(0.5),
            ],
        );
        // Idle channel: sole prospective flow gets the full share.
        assert!((ch.estimated_rate(0) - 10e6).abs() < 1.0);
        // Zero fade factor → zero rate, not NaN/∞.
        assert_eq!(ch.estimated_rate(1), 0.0);
        assert!(ch.estimated_rate(1).is_finite());
        // Out-of-range link index falls back to factor 1.0.
        assert!((ch.estimated_rate(99) - 10e6).abs() < 1.0);
        // An active flow halves the prospective share.
        ch.start_flow(0.0, FlowSpec::new(0, vec![50_000_000]));
        assert!((ch.estimated_rate(2) - 2.5e6).abs() < 1.0);
        assert_eq!(ch.estimated_rate(1), 0.0);
    }
}
