//! Fitting a channel model to a recorded trace.
//!
//! The synthetic profiles in this crate were hand-calibrated to the
//! paper's Sec. II-B statistics. When a *recorded* trace is available
//! (e.g. an iperf log like the paper's Fig. 3 measurement, imported via
//! [`crate::io`]), [`fit`] estimates the generator parameters directly:
//! the AR(1) mean/coefficient/innovation of the clear-channel process
//! and the duty/duration/depth of fade episodes. [`FittedProfile::to_profile`]
//! then yields a [`ChannelProfile`] whose synthetic traces statistically
//! resemble the recording — new environments can be modeled from a
//! five-minute measurement instead of manual tuning.

use crate::{ChannelProfile, DistanceProfile, FadeProfile, Trace};

/// Parameters estimated from a recorded trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedProfile {
    /// Mean clear-channel capacity (bit/s or the trace's unit).
    pub mean: f64,
    /// AR(1) coefficient of the clear-channel process.
    pub ar_coeff: f64,
    /// Innovation standard deviation relative to the mean.
    pub rel_sigma: f64,
    /// Fraction of time spent in fades.
    pub fade_duty: f64,
    /// Mean fade episode duration in seconds (0 if no fades).
    pub fade_mean_duration_s: f64,
    /// Mean fade depth relative to the clear mean (0..1).
    pub fade_depth: f64,
    /// The trace's sample step.
    pub dt: f64,
}

/// Estimates generator parameters from a trace.
///
/// Samples below 45 % of the trace median are classified as faded; the
/// AR(1) statistics are computed over the clear samples only.
///
/// # Panics
///
/// Panics if the trace has fewer than 16 samples.
pub fn fit(trace: &Trace) -> FittedProfile {
    let xs = trace.samples();
    assert!(xs.len() >= 16, "trace too short to fit");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let median = sorted[sorted.len() / 2];
    let fade_threshold = 0.45 * median;
    let faded: Vec<bool> = xs.iter().map(|&v| v < fade_threshold).collect();

    // Clear-channel AR(1) statistics (consecutive clear pairs only).
    let clear: Vec<f64> = xs
        .iter()
        .zip(&faded)
        .filter(|(_, &f)| !f)
        .map(|(&v, _)| v)
        .collect();
    let mean = if clear.is_empty() {
        median
    } else {
        clear.iter().sum::<f64>() / clear.len() as f64
    };
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 1..xs.len() {
        if !faded[i] && !faded[i - 1] {
            num += (xs[i] - mean) * (xs[i - 1] - mean);
            den += (xs[i - 1] - mean) * (xs[i - 1] - mean);
        }
    }
    let ar_coeff = if den > 0.0 {
        (num / den).clamp(0.0, 0.999)
    } else {
        0.0
    };
    let var = if clear.len() > 1 {
        clear.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / clear.len() as f64
    } else {
        0.0
    };
    let rel_sigma = if mean > 0.0 {
        (var * (1.0 - ar_coeff * ar_coeff)).sqrt() / mean
    } else {
        0.0
    };

    // Fade episodes.
    let mut episodes = 0usize;
    let mut faded_samples = 0usize;
    let mut depth_sum = 0.0;
    let mut in_fade = false;
    for (i, &f) in faded.iter().enumerate() {
        if f {
            faded_samples += 1;
            depth_sum += xs[i];
            if !in_fade {
                episodes += 1;
                in_fade = true;
            }
        } else {
            in_fade = false;
        }
    }
    let fade_duty = faded_samples as f64 / xs.len() as f64;
    let fade_mean_duration_s = if episodes > 0 {
        faded_samples as f64 * trace.dt() / episodes as f64
    } else {
        0.0
    };
    let fade_depth = if faded_samples > 0 && mean > 0.0 {
        (depth_sum / faded_samples as f64) / mean
    } else {
        0.0
    };

    FittedProfile {
        mean,
        ar_coeff,
        rel_sigma,
        fade_duty,
        fade_mean_duration_s,
        fade_depth,
        dt: trace.dt(),
    }
}

impl FittedProfile {
    /// Builds a synthetic [`ChannelProfile`] from the fitted parameters
    /// (no per-link outage/distance processes — those need per-link
    /// recordings; the channel-wide statistics carry over).
    pub fn to_profile(&self) -> ChannelProfile {
        let dt = self.dt;
        let exit_prob = if self.fade_mean_duration_s > 0.0 {
            (dt / self.fade_mean_duration_s).clamp(1e-4, 1.0)
        } else {
            1.0
        };
        // Stationary duty d = enter/(enter+exit) over clear time:
        // enter = exit * d / (1 - d).
        let enter_prob = if self.fade_duty > 0.0 && self.fade_duty < 1.0 {
            (exit_prob * self.fade_duty / (1.0 - self.fade_duty)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let depth = self.fade_depth.clamp(0.001, 0.999);
        let neutral_fade = FadeProfile {
            enter_prob: 0.0,
            exit_prob: 1.0,
            depth: (1.0, 1.0),
        };
        ChannelProfile {
            name: "fitted",
            dt,
            mean_bps: self.mean,
            ar_coeff: self.ar_coeff,
            rel_sigma: self.rel_sigma,
            channel_fade: FadeProfile {
                enter_prob,
                exit_prob,
                depth: (0.7 * depth, (1.3 * depth).min(0.999)),
            },
            link_fade: neutral_fade,
            link_outage: neutral_fade,
            link_distance: DistanceProfile {
                mean: 1.0,
                time_const_s: 1.0,
                sigma: 0.0,
                range: (1.0, 1.0),
            },
            rel_floor: 0.005,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn fit_recovers_a_flat_trace() {
        let t = Trace::from_samples(0.1, vec![100.0; 600]);
        let f = fit(&t);
        assert!((f.mean - 100.0).abs() < 1e-9);
        assert_eq!(f.fade_duty, 0.0);
        assert_eq!(f.fade_mean_duration_s, 0.0);
    }

    #[test]
    fn fit_recovers_generated_parameters_approximately() {
        let p = ChannelProfile::indoor();
        let t = p.generate(7, 600.0);
        let f = fit(&t);
        assert!(
            (f.mean - p.mean_bps).abs() < 0.2 * p.mean_bps,
            "mean {} vs {}",
            f.mean,
            p.mean_bps
        );
        assert!(
            (f.ar_coeff - p.ar_coeff).abs() < 0.2,
            "ar {} vs {}",
            f.ar_coeff,
            p.ar_coeff
        );
        assert!(
            (f.rel_sigma - p.rel_sigma).abs() < 0.08,
            "sigma {} vs {}",
            f.rel_sigma,
            p.rel_sigma
        );
    }

    #[test]
    fn fitted_profile_reproduces_fluctuation_statistics() {
        // Record outdoor → fit → regenerate → the summary statistics of
        // the regenerated trace resemble the recording.
        let original = ChannelProfile::outdoor().generate(3, 600.0);
        let refit = fit(&original).to_profile().generate(99, 600.0);
        let a = stats::summarize(&original);
        let b = stats::summarize(&refit);
        assert!(
            (a.mean_bps - b.mean_bps).abs() < 0.35 * a.mean_bps,
            "means diverge: {} vs {}",
            a.mean_bps,
            b.mean_bps
        );
        let ratio = b.interval_20pct / a.interval_20pct;
        assert!(
            (0.4..2.5).contains(&ratio),
            "fluctuation intervals diverge: {} vs {}",
            a.interval_20pct,
            b.interval_20pct
        );
    }

    #[test]
    fn fit_detects_injected_fades() {
        // 100 Mbps with 20-sample fades to 10 every 100 samples.
        let mut xs = vec![100.0; 1000];
        for start in (0..1000).step_by(200) {
            for v in xs.iter_mut().skip(start).take(20) {
                *v = 10.0;
            }
        }
        let f = fit(&Trace::from_samples(0.1, xs));
        assert!((f.fade_duty - 0.1).abs() < 0.02, "duty {}", f.fade_duty);
        assert!(
            (f.fade_mean_duration_s - 2.0).abs() < 0.3,
            "duration {}",
            f.fade_mean_duration_s
        );
        assert!((f.fade_depth - 0.1).abs() < 0.03, "depth {}", f.fade_depth);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_trace_panics() {
        let _ = fit(&Trace::from_samples(0.1, vec![1.0; 4]));
    }
}
