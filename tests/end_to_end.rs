//! Cross-crate integration tests: full simulated training runs through
//! the public API, every strategy, both workloads.

mod common;

use rog::trainer::{report, Environment, ExperimentConfig, ModelScale, Strategy, WorkloadKind};

fn base_cfg() -> ExperimentConfig {
    ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Indoor,
        strategy: Strategy::Bsp,
        model_scale: ModelScale::Small,
        n_workers: 3,
        n_laptop_workers: 1,
        duration_secs: 180.0,
        eval_every: 10,
        seed: 7,
        ..ExperimentConfig::default()
    }
}

#[test]
fn every_strategy_completes_a_run() {
    for strategy in [
        Strategy::Bsp,
        Strategy::Ssp { threshold: 4 },
        Strategy::Flown {
            min_threshold: 2,
            max_threshold: 12,
        },
        Strategy::Rog { threshold: 4 },
    ] {
        let m = ExperimentConfig {
            strategy,
            ..base_cfg()
        }
        .options()
        .run()
        .metrics;
        assert!(
            m.mean_iterations >= 5.0,
            "{}: too few iterations ({})",
            strategy.name(),
            m.mean_iterations
        );
        assert!(
            !m.checkpoints.is_empty(),
            "{}: no checkpoints",
            strategy.name()
        );
        assert!(m.total_energy_j > 0.0);
        assert!(m.composition.total() > 0.0);
        // Checkpoints are ordered in iteration and time.
        common::assert_checkpoints_monotone_in_time(&m, &strategy.name());
    }
}

#[test]
fn identical_seeds_reproduce_bitwise() {
    for strategy in [
        Strategy::Ssp { threshold: 4 },
        Strategy::Rog { threshold: 4 },
    ] {
        let cfg = ExperimentConfig {
            strategy,
            environment: Environment::Outdoor,
            ..base_cfg()
        };
        let a = cfg.options().run().metrics;
        let b = cfg.options().run().metrics;
        assert_eq!(a.checkpoints, b.checkpoints, "{}", strategy.name());
        assert_eq!(a.mean_iterations, b.mean_iterations);
        assert_eq!(a.total_energy_j, b.total_energy_j);
        assert_eq!(a.useful_bytes, b.useful_bytes);
    }
}

#[test]
fn different_seeds_differ() {
    let a = base_cfg().options().run().metrics;
    let b = ExperimentConfig {
        seed: 8,
        ..base_cfg()
    }
    .options()
    .run()
    .metrics;
    assert_ne!(a.checkpoints, b.checkpoints);
}

#[test]
fn crimp_error_decreases_under_training() {
    let m = ExperimentConfig {
        workload: WorkloadKind::Crimp,
        strategy: Strategy::Rog { threshold: 4 },
        duration_secs: 240.0,
        ..base_cfg()
    }
    .options()
    .run()
    .metrics;
    assert_eq!(m.metric_name, "trajectory error (m)");
    assert!(!m.metric_higher_better);
    let first = m.checkpoints.first().expect("has checkpoints").metric;
    let last = m.checkpoints.last().expect("has checkpoints").metric;
    assert!(
        last <= first,
        "mapping should not get worse: {first} -> {last}"
    );
}

#[test]
fn rog_stalls_less_than_bsp_outdoors() {
    // The headline mechanism at small scale: on an unstable channel BSP
    // loses time at the barrier; ROG adapts its transmissions.
    let bsp = ExperimentConfig {
        environment: Environment::Outdoor,
        duration_secs: 300.0,
        ..base_cfg()
    }
    .options()
    .run()
    .metrics;
    let rog = ExperimentConfig {
        environment: Environment::Outdoor,
        strategy: Strategy::Rog { threshold: 4 },
        duration_secs: 300.0,
        ..base_cfg()
    }
    .options()
    .run()
    .metrics;
    assert!(
        rog.composition.stall < bsp.composition.stall,
        "ROG stall {:.2}s !< BSP stall {:.2}s",
        rog.composition.stall,
        bsp.composition.stall
    );
    assert!(
        rog.mean_iterations >= bsp.mean_iterations,
        "ROG throughput {} !>= BSP {}",
        rog.mean_iterations,
        bsp.mean_iterations
    );
}

#[test]
fn report_helpers_work_on_real_runs() {
    let m = base_cfg().options().run().metrics;
    let mid = m.duration / 2.0;
    let v = report::metric_at_time(&m, mid).expect("has checkpoints");
    assert!(v.is_finite());
    let final_metric = m.checkpoints.last().expect("non-empty").metric;
    let t = report::time_to_reach(&m, final_metric - 1e-9);
    assert!(t.is_some());
}

#[test]
fn stable_channel_has_negligible_stall_for_rog() {
    let m = ExperimentConfig {
        environment: Environment::Stable,
        strategy: Strategy::Rog { threshold: 4 },
        ..base_cfg()
    }
    .options()
    .run()
    .metrics;
    assert!(
        m.composition.stall < 0.2 * m.composition.total(),
        "stall {:.2}s of {:.2}s on a stable channel",
        m.composition.stall,
        m.composition.total()
    );
}
