//! The event journal must reconcile with `RunMetrics`: the composition
//! a `TraceSummary` replays from the journal is *bitwise* identical to
//! the one the metrics collector reports, residency sums conserve wall
//! time within 1e-9, and turning tracing on never perturbs the run.

mod common;

use common::{assert_identical_runs, small_cluster_cfg, EPS};
use rog::obs::TraceSummary;
use rog::prelude::*;

/// Composition comparisons are bitwise: the summary replay mirrors the
/// timeline float arithmetic op-for-op, so any drift is a bug.
fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} != {b}");
}

/// The scenario matrix: every strategy on the shared small cluster,
/// plus a faulted and a lossy variant exercising offline residency and
/// the loss/retransmit event paths.
fn scenarios() -> Vec<(&'static str, ExperimentConfig)> {
    let mut out: Vec<(&'static str, ExperimentConfig)> = vec![
        ("bsp", small_cluster_cfg(Strategy::Bsp)),
        ("ssp4", small_cluster_cfg(Strategy::Ssp { threshold: 4 })),
        ("asp", small_cluster_cfg(Strategy::Asp)),
        (
            "flown",
            small_cluster_cfg(Strategy::Flown {
                min_threshold: 2,
                max_threshold: 12,
            }),
        ),
        (
            "dssp",
            small_cluster_cfg(Strategy::Dssp {
                min_threshold: 1,
                max_threshold: 8,
            }),
        ),
        (
            "abs",
            small_cluster_cfg(Strategy::Abs {
                min_threshold: 1,
                max_threshold: 8,
            }),
        ),
        ("rog4", small_cluster_cfg(Strategy::Rog { threshold: 4 })),
        (
            "roga",
            small_cluster_cfg(Strategy::RogAdaptive {
                min_threshold: 1,
                max_threshold: 8,
            }),
        ),
    ];
    let mut faulted = small_cluster_cfg(Strategy::Rog { threshold: 4 });
    faulted.fault_plan = Some(FaultPlan::new().worker_offline(1, 30.0, 90.0));
    out.push(("rog4+fault", faulted));
    let mut lossy = small_cluster_cfg(Strategy::Rog { threshold: 4 });
    lossy.loss = Some(LossConfig::gilbert_elliott(lossy.seed, 0.10));
    out.push(("rog4+loss", lossy));
    let mut lossy_roga = small_cluster_cfg(Strategy::RogAdaptive {
        min_threshold: 1,
        max_threshold: 8,
    });
    lossy_roga.loss = Some(LossConfig::gilbert_elliott(lossy_roga.seed, 0.10));
    out.push(("roga+loss", lossy_roga));
    out
}

#[test]
fn journal_composition_reconciles_bitwise_with_run_metrics() {
    for (name, cfg) in scenarios() {
        let out = cfg.options().traced(true).run();
        let (m, journal) = (out.metrics, out.journal.expect("traced run"));
        let s = TraceSummary::from_jsonl(&journal.to_jsonl())
            .unwrap_or_else(|e| panic!("{name}: journal does not parse: {e}"));
        let comp = s.composition();
        assert_bits(comp[0], m.composition.compute, &format!("{name} compute"));
        assert_bits(
            comp[1],
            m.composition.communicate,
            &format!("{name} communicate"),
        );
        assert_bits(comp[2], m.composition.stall, &format!("{name} stall"));
        assert_bits(comp[3], m.composition.offline, &format!("{name} offline"));
        // The cluster-total gauges are the same sums in the same order.
        assert_bits(
            s.cluster_residency(2),
            m.stall_secs,
            &format!("{name} stall_secs"),
        );
        assert_bits(
            s.cluster_residency(4),
            m.offline_secs,
            &format!("{name} offline_secs"),
        );
        assert_bits(s.duration, m.duration, &format!("{name} duration"));
        // run_end carries total iterations; metrics report the mean.
        assert!(
            (s.iters as f64 / s.n_devices as f64 - m.mean_iterations).abs() < EPS,
            "{name}: {} iters over {} devices vs mean {}",
            s.iters,
            s.n_devices,
            m.mean_iterations
        );
    }
}

#[test]
fn residency_conserves_wall_time() {
    for (name, cfg) in scenarios() {
        let out = cfg.options().traced(true).run();
        let (m, journal) = (out.metrics, out.journal.expect("traced run"));
        let s = TraceSummary::from_jsonl(&journal.to_jsonl()).expect("parses");
        // Every device's five state residencies tile its whole timeline:
        // no gaps, so the sum covers at least the run duration.
        let mut total_wall = 0.0;
        for (w, res) in s.residency.iter().enumerate() {
            let sum: f64 = res.iter().sum();
            assert!(
                sum >= m.duration - EPS,
                "{name}: device {w} residency {sum} < duration {}",
                m.duration
            );
            total_wall += sum;
        }
        // Conservation: compute + communicate + stall + offline (the
        // per-iteration composition, scaled back up) plus idle equals
        // total wall time within 1e-9 per device.
        let busy: f64 = s.composition().iter().sum::<f64>() * s.iters as f64;
        let idle = s.cluster_residency(3);
        assert!(
            (busy + idle - total_wall).abs() < EPS * s.n_devices as f64,
            "{name}: busy {busy} + idle {idle} != wall {total_wall}"
        );
    }
}

#[test]
fn event_pairings_are_balanced() {
    for (name, cfg) in scenarios() {
        let journal = cfg
            .options()
            .traced(true)
            .run()
            .journal
            .expect("traced run");
        let s = TraceSummary::from_jsonl(&journal.to_jsonl()).expect("parses");
        let n = |ev: &str| s.event_counts.get(ev).copied().unwrap_or(0);
        assert_eq!(n("gate_enter"), n("gate_exit"), "{name}: unpaired gate");
        assert_eq!(n("push_start"), n("push_end"), "{name}: unpaired push");
        assert_eq!(n("pull_start"), n("pull_end"), "{name}: unpaired pull");
        assert_eq!(
            n("iter_end"),
            s.iters,
            "{name}: iter_end count vs run_end total"
        );
        assert!(n("iter_begin") >= n("iter_end"), "{name}: begin < end");
        assert_eq!(n("meta"), 1, "{name}");
        assert_eq!(n("run_end"), 1, "{name}");
        assert_eq!(n("close") as usize, s.n_devices, "{name}");
    }
}

#[test]
fn tracing_never_perturbs_the_run() {
    for strategy in [Strategy::Bsp, Strategy::Rog { threshold: 4 }] {
        let mut cfg = small_cluster_cfg(strategy);
        cfg.fault_plan = Some(FaultPlan::new().worker_offline(1, 30.0, 90.0));
        let plain = cfg.options().run().metrics;
        let out = cfg.options().traced(true).run();
        let (traced, journal) = (out.metrics, out.journal.expect("traced run"));
        assert!(!journal.to_jsonl().is_empty(), "journal must be non-empty");
        assert_identical_runs(&plain, &traced, "trace on vs off");
    }
}
