//! The `shards=1` byte-identity regression gate: a run that routes the
//! parameter plane through an explicit single-shard [`ShardMap`] must
//! be indistinguishable — metrics, serialized reports *and* the event
//! journal — from the pre-shard engine (the default config), for every
//! strategy in the shared scenario matrix and at several compute-thread
//! counts. Sharded (>1) ROG runs must additionally be deterministic
//! and thread-count invariant, and non-ROG strategies must ignore the
//! shard count entirely.

mod common;

use common::{assert_identical_runs, scenario_matrix};
use rog::prelude::*;
use rog::trainer::compute;

fn traced(cfg: &ExperimentConfig) -> (RunMetrics, String) {
    let out = cfg.options().traced(true).run();
    (out.metrics, out.journal.expect("traced run").to_jsonl())
}

/// One test drives every scenario and thread count: the thread override
/// is process-global, so interleaving with other `#[test]`s would race.
#[test]
fn one_shard_is_byte_identical_to_the_unsharded_engine() {
    for (name, cfg) in scenario_matrix() {
        let sharded_cfg = ExperimentConfig {
            n_shards: 1,
            ..cfg.clone()
        };
        for threads in [1usize, 2, 8] {
            compute::set_thread_override(Some(threads));
            let (base, base_journal) = traced(&cfg);
            let (one, one_journal) = traced(&sharded_cfg);
            compute::set_thread_override(None);
            assert_identical_runs(&base, &one, &format!("{name} @ {threads} threads"));
            assert_eq!(
                base_journal, one_journal,
                "{name} @ {threads} threads: journal differs under an explicit 1-shard map"
            );
        }
    }
}

#[test]
fn sharded_runs_are_deterministic_and_thread_invariant() {
    for shards in [2usize, 4] {
        let mut cfg = scenario_matrix()
            .into_iter()
            .find(|(name, _)| *name == "rog4")
            .expect("matrix has rog4")
            .1;
        cfg.n_shards = shards;
        compute::set_thread_override(Some(1));
        let (serial, serial_journal) = traced(&cfg);
        compute::set_thread_override(Some(8));
        let (parallel, parallel_journal) = traced(&cfg);
        compute::set_thread_override(None);
        let (again, again_journal) = traced(&cfg);
        assert!(
            serial.name.contains(&format!("+shard{shards}")),
            "{}",
            serial.name
        );
        assert_identical_runs(
            &serial,
            &parallel,
            &format!("{shards} shards, threads 1 vs 8"),
        );
        assert_identical_runs(&serial, &again, &format!("{shards} shards, replay"));
        assert_eq!(serial_journal, parallel_journal, "{shards} shards: journal");
        assert_eq!(
            serial_journal, again_journal,
            "{shards} shards: replay journal"
        );
    }
}

#[test]
fn non_rog_strategies_ignore_the_shard_count() {
    for (name, cfg) in scenario_matrix() {
        if cfg.strategy.is_row_granular() {
            continue;
        }
        let (base, base_journal) = traced(&cfg);
        let sharded = ExperimentConfig {
            n_shards: 4,
            ..cfg.clone()
        };
        let (m, journal) = traced(&sharded);
        assert_eq!(
            base.name, m.name,
            "{name}: name must not grow a shard marker"
        );
        assert_identical_runs(&base, &m, &format!("{name} with ignored n_shards=4"));
        assert_eq!(base_journal, journal, "{name}: journal");
    }
}
