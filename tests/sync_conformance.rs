//! Cross-model gate conformance suite.
//!
//! Every synchronization strategy the trainer knows must sit where the
//! staleness spectrum says it sits:
//!
//! * **BSP ≡ SSP-0** — the bulk-synchronous barrier is the zero-slack
//!   SSP gate, byte-for-byte (metrics and journal, modulo the run
//!   name).
//! * **ASP is the unbounded SSP limit** — an SSP gate that can never
//!   bind replays exactly as ASP.
//! * **Monotonicity** — widening any staleness bound (or an adaptive
//!   model's bound *range*) never increases stall residency.
//! * **Instantaneous bounds** — every `gate_enter` in every journal
//!   respects the bound in force at that instant: static for BSP, SSP
//!   and ROG, replayed from `threshold_adapt` / `auto_threshold`
//!   events for DSSP, ABS and the adaptive-bound ROG hybrid.
//! * **Adaptation is live** — the adaptive controllers demonstrably
//!   move their bounds in the scenarios built to provoke them (a
//!   controller that silently stops adapting degrades into plain SSP
//!   and this suite catches it).

mod common;

use common::{scenario_matrix, small_cluster_cfg};
use rog::obs::Record;
use rog::prelude::*;
use rog::sync::gate;
use rog::trainer::report::runs_to_json;

fn traced(cfg: &ExperimentConfig) -> (RunMetrics, String) {
    let out = cfg.options().traced(true).run();
    (out.metrics, out.journal.expect("traced run").to_jsonl())
}

fn short(strategy: Strategy) -> ExperimentConfig {
    ExperimentConfig {
        duration_secs: 60.0,
        ..small_cluster_cfg(strategy)
    }
}

/// Asserts two runs are byte-identical once the run name (which
/// legitimately differs between strategy labels) is normalized away —
/// serialized report and event journal included.
fn assert_twin_runs(a: &(RunMetrics, String), b: &(RunMetrics, String), what: &str) {
    let (am, aj) = a;
    let (bm, bj) = b;
    let a_json = runs_to_json(std::slice::from_ref(am)).replace(&am.name, "TWIN");
    let b_json = runs_to_json(std::slice::from_ref(bm)).replace(&bm.name, "TWIN");
    assert_eq!(a_json, b_json, "{what}: serialized reports differ");
    assert_eq!(
        aj.replace(&am.name, "TWIN"),
        bj.replace(&bm.name, "TWIN"),
        "{what}: journals differ"
    );
}

#[test]
fn bsp_is_ssp_zero_modulo_run_name() {
    for env in [Environment::Stable, Environment::Outdoor] {
        let bsp = traced(&ExperimentConfig {
            environment: env,
            ..short(Strategy::Bsp)
        });
        let ssp0 = traced(&ExperimentConfig {
            environment: env,
            ..short(Strategy::Ssp { threshold: 0 })
        });
        assert_twin_runs(&bsp, &ssp0, &format!("BSP vs SSP-0 ({})", env.name()));
    }
}

#[test]
fn asp_is_the_unbounded_ssp_limit() {
    // `FixedThreshold::asp()` is literally the `u32::MAX` threshold, so
    // the composition SSP-huge → ASP must be exact, not approximate.
    let asp = traced(&short(Strategy::Asp));
    let ssp_huge = traced(&short(Strategy::Ssp {
        threshold: u32::MAX,
    }));
    assert_twin_runs(&asp, &ssp_huge, "ASP vs SSP-u32::MAX");
}

#[test]
fn widening_a_bound_never_increases_stall() {
    // Each family is a list of configs ordered from the tightest bound
    // to the widest; stall residency must be non-increasing along it.
    // Outdoor fades make the gates bind; loss drives the hybrid; a
    // laptop worker skews DSSP's per-worker iteration rates.
    let outdoor = |strategy| ExperimentConfig {
        environment: Environment::Outdoor,
        ..short(strategy)
    };
    let lossy = |strategy| {
        let mut cfg = short(strategy);
        cfg.loss = Some(LossConfig::gilbert_elliott(cfg.seed, 0.10));
        cfg
    };
    let hetero = |strategy| ExperimentConfig {
        n_laptop_workers: 1,
        ..outdoor(strategy)
    };
    let families: Vec<(&str, Vec<ExperimentConfig>)> = vec![
        (
            "ssp 0/2/8 outdoor",
            [0, 2, 8]
                .map(|threshold| outdoor(Strategy::Ssp { threshold }))
                .to_vec(),
        ),
        (
            "rog 1/4/8 outdoor",
            [1, 4, 8]
                .map(|threshold| outdoor(Strategy::Rog { threshold }))
                .to_vec(),
        ),
        (
            "dssp 1..1 / 1..8 hetero outdoor",
            [1, 8]
                .map(|hi| {
                    hetero(Strategy::Dssp {
                        min_threshold: 1,
                        max_threshold: hi,
                    })
                })
                .to_vec(),
        ),
        (
            "abs 1..1 / 1..8 outdoor",
            [1, 8]
                .map(|hi| {
                    outdoor(Strategy::Abs {
                        min_threshold: 1,
                        max_threshold: hi,
                    })
                })
                .to_vec(),
        ),
        (
            "roga 1..1 / 1..8 lossy",
            [1, 8]
                .map(|hi| {
                    lossy(Strategy::RogAdaptive {
                        min_threshold: 1,
                        max_threshold: hi,
                    })
                })
                .to_vec(),
        ),
    ];
    for (family, configs) in families {
        let mut prev: Option<(String, f64)> = None;
        for cfg in configs {
            let (m, _) = traced(&cfg);
            if let Some((prev_name, prev_stall)) = &prev {
                assert!(
                    m.stall_secs <= prev_stall + common::EPS,
                    "{family}: widening {prev_name} -> {} raised stall {prev_stall} -> {}",
                    m.name,
                    m.stall_secs
                );
            }
            prev = Some((m.name.clone(), m.stall_secs));
        }
    }
}

/// Walks a journal asserting every `gate_enter` lead respects the
/// bound in force at that line — the same reconstruction the fuzz
/// checker runs, pinned here against hand-picked scenarios.
fn assert_instantaneous_bounds(strategy: Strategy, journal: &str, what: &str) {
    enum Bound {
        Fixed(u64),
        PerWorker { thr: Vec<u64>, initial: u64 },
        Row { cur: u32 },
    }
    let mut bound = match strategy {
        Strategy::Bsp => Bound::Fixed(1),
        Strategy::Ssp { threshold } => Bound::Fixed(u64::from(threshold) + 1),
        Strategy::Asp | Strategy::Flown { .. } => unreachable!("unbounded/unjournaled"),
        Strategy::Dssp { min_threshold, .. } | Strategy::Abs { min_threshold, .. } => {
            Bound::PerWorker {
                thr: Vec::new(),
                initial: u64::from(min_threshold),
            }
        }
        Strategy::Rog { threshold } => Bound::Fixed(gate::rsp_bound(threshold)),
        Strategy::RogAdaptive { min_threshold, .. } => Bound::Row { cur: min_threshold },
    };
    let mut gates = 0usize;
    for line in journal.lines() {
        if line.contains("\"ev\":\"threshold_adapt\"") {
            if let (Bound::PerWorker { thr, initial }, Ok(rec)) = (&mut bound, Record::parse(line))
            {
                let w = rec.num("w").expect("threshold_adapt has w") as usize;
                if thr.len() <= w {
                    thr.resize(w + 1, *initial);
                }
                thr[w] = rec.num("threshold").expect("threshold_adapt has threshold") as u64;
            }
            continue;
        }
        if line.contains("\"ev\":\"auto_threshold\"") {
            if let (Bound::Row { cur }, Ok(rec)) = (&mut bound, Record::parse(line)) {
                *cur = rec.num("threshold").expect("auto_threshold has threshold") as u32;
            }
            continue;
        }
        if !line.contains("\"ev\":\"gate_enter\"") {
            continue;
        }
        let rec = Record::parse(line).expect("gate_enter parses");
        let lead = rec.num("lead").expect("gate_enter has lead") as u64;
        let limit = match &bound {
            Bound::Fixed(b) => *b,
            Bound::PerWorker { thr, initial } => {
                let w = rec.num("w").expect("gate_enter has w") as usize;
                thr.get(w).copied().unwrap_or(*initial) + 1
            }
            Bound::Row { cur } => gate::rsp_bound(*cur),
        };
        assert!(
            lead <= limit,
            "{what}: gate_enter lead {lead} > instantaneous bound {limit}: {line}"
        );
        gates += 1;
    }
    assert!(gates > 0, "{what}: journal recorded no gate_enter events");
}

#[test]
fn every_gate_enter_respects_the_instantaneous_bound() {
    let lossy = |strategy| {
        let mut cfg = short(strategy);
        cfg.loss = Some(LossConfig::gilbert_elliott(cfg.seed, 0.10));
        cfg
    };
    let scenarios: Vec<(&str, ExperimentConfig)> = vec![
        ("bsp", short(Strategy::Bsp)),
        ("ssp2", short(Strategy::Ssp { threshold: 2 })),
        (
            "dssp hetero",
            ExperimentConfig {
                n_laptop_workers: 1,
                environment: Environment::Outdoor,
                ..short(Strategy::Dssp {
                    min_threshold: 1,
                    max_threshold: 8,
                })
            },
        ),
        (
            "abs outdoor",
            ExperimentConfig {
                environment: Environment::Outdoor,
                ..short(Strategy::Abs {
                    min_threshold: 1,
                    max_threshold: 8,
                })
            },
        ),
        ("rog4", short(Strategy::Rog { threshold: 4 })),
        (
            "roga lossy",
            lossy(Strategy::RogAdaptive {
                min_threshold: 1,
                max_threshold: 8,
            }),
        ),
    ];
    for (what, cfg) in scenarios {
        let (_, journal) = traced(&cfg);
        assert_instantaneous_bounds(cfg.strategy, &journal, what);
    }
}

#[test]
fn adaptive_controllers_demonstrably_adapt() {
    // DSSP: a laptop worker skews per-worker iteration rates, so some
    // worker must be granted more slack than the floor.
    let (_, journal) = traced(&ExperimentConfig {
        n_laptop_workers: 1,
        environment: Environment::Outdoor,
        ..short(Strategy::Dssp {
            min_threshold: 1,
            max_threshold: 8,
        })
    });
    let widened = journal.lines().any(|l| {
        l.contains("\"ev\":\"threshold_adapt\"")
            && Record::parse(l)
                .ok()
                .and_then(|r| r.num("threshold"))
                .is_some_and(|t| t > 1.0)
    });
    assert!(widened, "DSSP never widened any worker's threshold");

    // ABS: outdoor fades produce stall pressure, so the uniform bound
    // must leave its floor at least once.
    let (_, journal) = traced(&ExperimentConfig {
        environment: Environment::Outdoor,
        ..short(Strategy::Abs {
            min_threshold: 1,
            max_threshold: 8,
        })
    });
    let widened = journal.lines().any(|l| {
        l.contains("\"ev\":\"threshold_adapt\"")
            && Record::parse(l)
                .ok()
                .and_then(|r| r.num("threshold"))
                .is_some_and(|t| t > 1.0)
    });
    assert!(widened, "ABS never widened its bound under stall pressure");

    // The hybrid: bursty loss raises the per-link loss EWMAs, so the
    // row bound must widen past its floor.
    let mut cfg = short(Strategy::RogAdaptive {
        min_threshold: 1,
        max_threshold: 8,
    });
    cfg.loss = Some(LossConfig::gilbert_elliott(cfg.seed, 0.10));
    let (_, journal) = traced(&cfg);
    let widened = journal.lines().any(|l| {
        l.contains("\"ev\":\"auto_threshold\"")
            && Record::parse(l)
                .ok()
                .and_then(|r| r.num("threshold"))
                .is_some_and(|t| t > 1.0)
    });
    assert!(widened, "the adaptive bound never widened under loss");
}

#[test]
fn matrix_run_names_are_distinct() {
    // Adaptive models encode their bound ranges in the strategy name,
    // so no two rows of any run matrix can collide.
    let names: Vec<String> = scenario_matrix()
        .into_iter()
        .map(|(_, cfg)| cfg.name())
        .collect();
    let mut unique = names.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), names.len(), "matrix names collide: {names:?}");

    let models = [
        Strategy::Bsp,
        Strategy::Ssp { threshold: 4 },
        Strategy::Asp,
        Strategy::Flown {
            min_threshold: 2,
            max_threshold: 12,
        },
        Strategy::Dssp {
            min_threshold: 1,
            max_threshold: 8,
        },
        Strategy::Abs {
            min_threshold: 1,
            max_threshold: 8,
        },
        Strategy::Rog { threshold: 4 },
        Strategy::RogAdaptive {
            min_threshold: 1,
            max_threshold: 8,
        },
    ];
    let mut model_names: Vec<String> = models.iter().map(|m| m.name()).collect();
    model_names.sort();
    model_names.dedup();
    assert_eq!(model_names.len(), models.len());
}
