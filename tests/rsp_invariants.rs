//! RSP safety invariants exercised through the core building blocks:
//! no matter how the (adversarial) channel truncates transmissions down
//! to the MTA/mandatory floor, row staleness stays within the
//! threshold and every worker eventually applies the same gradients.

mod common;

use proptest::prelude::*;
use rog::core::{mta, RogServer, RogWorker, RogWorkerConfig, RowId};
use rog::tensor::rng::DetRng;
use rog::tensor::Matrix;

fn params() -> Vec<Matrix> {
    vec![
        Matrix::zeros(6, 4),
        Matrix::zeros(1, 6),
        Matrix::zeros(3, 6),
        Matrix::zeros(1, 3),
    ]
}

fn random_grads(rng: &mut DetRng) -> Vec<Matrix> {
    params()
        .iter()
        .map(|m| Matrix::randn(m.rows(), m.cols(), 1.0, rng))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Worker-level RSP: if every push delivers at least the mandatory
    /// prefix and the MTA floor, no row on a worker ever exceeds the
    /// staleness threshold.
    #[test]
    fn prop_worker_staleness_is_bounded(
        seed in 0u64..1000,
        threshold in 2u32..8,
        cut_bias in 0.0f64..1.0,
    ) {
        let ps = params();
        let mut worker = RogWorker::new(&ps, RogWorkerConfig::new(threshold, 0.01));
        let n_rows = worker.partition().n_rows();
        let mta_rows = mta::mta_rows(n_rows, threshold);
        let mut rng = DetRng::new(seed);
        for iter in 1..=40u64 {
            let g = random_grads(&mut rng);
            worker.accumulate(&g);
            let plan = worker.plan_push(iter);
            // Mandatory rows sit at the front of the plan.
            let mandatory = common::mandatory_prefix(&plan, worker.row_iters(), iter, threshold);
            // Adversarial channel: deliver between the floor and all.
            let floor = mta_rows.max(mandatory).min(plan.len());
            let extra = ((plan.len() - floor) as f64 * cut_bias * rng.uniform()) as usize;
            let delivered = floor + extra;
            worker.commit_push(&plan[..delivered], iter);
            prop_assert!(
                worker.max_row_staleness(iter) < u64::from(threshold),
                "iter {iter}: staleness {} reached threshold {threshold}",
                worker.max_row_staleness(iter)
            );
        }
    }

    /// Server-level RSP: the gate never admits a pull whose pushed
    /// version leads the globally stalest row by the threshold.
    #[test]
    fn prop_server_gate_bounds_divergence(
        seed in 0u64..1000,
        threshold in 2u32..6,
    ) {
        let ps = params();
        let n_workers = 3usize;
        let mut server = RogServer::new(&ps, n_workers, threshold, Default::default());
        let mut workers: Vec<RogWorker> = (0..n_workers)
            .map(|_| RogWorker::new(&ps, RogWorkerConfig::new(threshold, 0.01)))
            .collect();
        let n_rows = workers[0].partition().n_rows();
        let mta_rows = mta::mta_rows(n_rows, threshold);
        let mut rng = DetRng::new(seed);
        let mut iters = vec![0u64; n_workers];
        for _round in 0..60 {
            // A random worker tries to advance; the gate may block it.
            let w = rng.index(n_workers);
            let next = iters[w] + 1;
            let g = random_grads(&mut rng);
            workers[w].accumulate(&g);
            let plan = workers[w].plan_push(next);
            let mandatory =
                common::mandatory_prefix(&plan, workers[w].row_iters(), next, threshold);
            let floor = mta_rows.max(mandatory).min(plan.len());
            let sent = workers[w].commit_push(&plan[..floor], next);
            server.on_push(w, next, &sent);
            iters[w] = next;
            if server.gate_ok(next) {
                let pull = server.plan_pull(w);
                let take = pull.len().min(mta_rows.max(1));
                let _ = server.commit_pull(w, &pull[..take]);
            } else {
                // Gate blocked: verify the lead is genuinely at the
                // threshold.
                let min = server.versions_mut().global_min();
                prop_assert!(
                    next >= min + u64::from(threshold),
                    "gate blocked below threshold: next {next}, min {min}"
                );
            }
        }
    }
}

/// All workers receive identical accumulated gradients over time (the
/// Sec. III-B consistency argument), modulo the bounded compression
/// residual still held server-side.
#[test]
fn all_workers_apply_the_same_totals() {
    let ps = params();
    let n_workers = 2usize;
    let threshold = 4u32;
    let mut server = RogServer::new(&ps, n_workers, threshold, Default::default());
    let mut worker = RogWorker::new(&ps, RogWorkerConfig::new(threshold, 1.0));
    let n_rows = worker.partition().n_rows();
    let all_rows: Vec<RowId> = (0..n_rows).map(RowId).collect();
    let mut rng = DetRng::new(42);
    // One producer pushes everything each round; both consumers drain
    // fully each round.
    let mut received: Vec<Vec<f32>> = vec![vec![], vec![]];
    for iter in 1..=30u64 {
        let g = random_grads(&mut rng);
        worker.accumulate(&g);
        let plan = worker.plan_push(iter);
        let sent = worker.commit_push(&plan, iter);
        server.on_push(0, iter, &sent);
        for (dst, inbox) in received.iter_mut().enumerate() {
            let payload = server.commit_pull(dst, &all_rows);
            let flat: f32 = payload.iter().flat_map(|(_, v)| v.iter()).sum();
            inbox.push(flat);
        }
    }
    let total0: f32 = received[0].iter().sum();
    let total1: f32 = received[1].iter().sum();
    assert!(
        (total0 - total1).abs() < 0.05 * total0.abs().max(1.0),
        "workers received diverging totals: {total0} vs {total1}"
    );
}
