//! Conservation and fairness invariants of the wireless channel,
//! property-tested against random traces and flow mixes.

use proptest::prelude::*;
use rog::net::{Channel, ChannelProfile, FlowOutcome, FlowSpec, Trace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bytes delivered never exceed the integral of channel capacity
    /// (conservation), regardless of flow mix and deadlines.
    #[test]
    fn prop_conservation_of_bytes(
        seed in 0u64..500,
        n_flows in 1usize..5,
        chunk_kb in 1u64..200,
        deadline in prop::option::of(0.05f64..2.0),
    ) {
        let profile = ChannelProfile::outdoor();
        let capacity = profile.generate(seed, 30.0);
        let links: Vec<Trace> = (0..n_flows)
            .map(|w| profile.generate_link(seed + 100 + w as u64, 30.0))
            .collect();
        let mut ch = Channel::new(capacity.clone(), links);
        for w in 0..n_flows {
            let mut spec = FlowSpec::new(w, vec![chunk_kb * 1024; 8]);
            if let Some(d) = deadline {
                spec = spec.with_deadline(d);
            }
            ch.start_flow(0.0, spec);
        }
        loop {
            let evs = ch.advance_until(30.0);
            if evs.is_empty() {
                break;
            }
        }
        // Link factors are ≤ 1, so total delivery is bounded by the
        // capacity integral.
        let cap_integral: f64 = capacity
            .samples()
            .iter()
            .take((30.0 / capacity.dt()) as usize + 1)
            .map(|bps| bps / 8.0 * capacity.dt())
            .sum();
        let delivered = ch.useful_bytes() + ch.wasted_bytes();
        prop_assert!(
            delivered <= cap_integral * 1.01 + 1024.0,
            "delivered {delivered} exceeds capacity integral {cap_integral}"
        );
    }

    /// A deadline never yields more chunks than the flow had, and the
    /// reported byte count matches the chunk prefix.
    #[test]
    fn prop_deadline_accounting(
        seed in 0u64..500,
        n_chunks in 1usize..20,
        deadline in 0.0f64..1.0,
    ) {
        let profile = ChannelProfile::indoor();
        let capacity = profile.generate(seed, 10.0);
        let mut ch = Channel::new(capacity, vec![Trace::constant(1.0)]);
        let chunks: Vec<u64> = (0..n_chunks).map(|i| 10_000 + 1_000 * i as u64).collect();
        let total: u64 = chunks.iter().sum();
        ch.start_flow(0.0, FlowSpec::new(0, chunks.clone()).with_deadline(deadline));
        let evs = ch.advance_until(10.0);
        prop_assert_eq!(evs.len(), 1);
        match evs[0].outcome {
            FlowOutcome::Completed => {
                prop_assert!((ch.useful_bytes() - total as f64).abs() < 1.0);
            }
            FlowOutcome::DeadlineReached { chunks_done, bytes_done } => {
                prop_assert!(chunks_done <= n_chunks);
                let expect: u64 = chunks.iter().take(chunks_done).sum();
                prop_assert_eq!(bytes_done, expect);
                prop_assert!(evs[0].at <= deadline + 1e-6);
            }
            FlowOutcome::Cancelled { .. } => {
                return Err(TestCaseError::fail("nothing cancels this flow"));
            }
        }
    }

    /// Two flows over identical links finish simultaneously (fair
    /// airtime sharing) on any capacity trace.
    #[test]
    fn prop_equal_flows_finish_together(seed in 0u64..500) {
        let profile = ChannelProfile::outdoor();
        let capacity = profile.generate(seed, 60.0);
        let links = vec![Trace::constant(1.0), Trace::constant(1.0)];
        let mut ch = Channel::new(capacity, links);
        ch.start_flow(0.0, FlowSpec::new(0, vec![500_000]));
        ch.start_flow(0.0, FlowSpec::new(1, vec![500_000]));
        let mut ends = Vec::new();
        loop {
            let evs = ch.advance_until(60.0);
            if evs.is_empty() {
                break;
            }
            ends.extend(evs.iter().map(|e| e.at));
        }
        prop_assert_eq!(ends.len(), 2);
        prop_assert!((ends[0] - ends[1]).abs() < 1e-6, "{:?}", ends);
    }
}

/// Wasted bytes only appear when deadlines cut flows.
#[test]
fn no_waste_without_deadlines() {
    let profile = ChannelProfile::outdoor();
    let mut ch = Channel::new(
        profile.generate(3, 30.0),
        vec![profile.generate_link(4, 30.0)],
    );
    ch.start_flow(0.0, FlowSpec::new(0, vec![100_000; 10]));
    loop {
        if ch.advance_until(30.0).is_empty() {
            break;
        }
    }
    assert_eq!(ch.wasted_bytes(), 0.0);
    assert!((ch.useful_bytes() - 1_000_000.0).abs() < 1.0);
}
