//! Shard-routing invariants of [`ShardMap`], property-tested through
//! the facade: every global row is homed by exactly one shard, the
//! per-shard row sets are a disjoint cover of the model, local/global
//! translation round-trips, and the one-shard map is the identity —
//! the structural fact behind the `shards=1` byte-identity guarantee.

use proptest::prelude::*;
use rog::core::{RowId, ShardMap};

/// Both partitioning modes from one generator, so every invariant is
/// checked against contiguous ranges *and* seeded-hash scatter.
fn build(n_rows: usize, n_shards: usize, hash_seed: Option<u64>) -> ShardMap {
    match hash_seed {
        None => ShardMap::contiguous(n_rows, n_shards),
        Some(seed) => ShardMap::seeded_hash(n_rows, n_shards, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Exactly-one-shard: `shard_of` places every row on one in-range
    /// shard, and that placement agrees with the shard's own row list.
    #[test]
    fn prop_every_row_homed_by_exactly_one_shard(
        n_rows in 1usize..200,
        n_shards in 1usize..9,
        hash_seed in prop::option::of(0u64..=u64::MAX),
    ) {
        let map = build(n_rows, n_shards, hash_seed);
        for row in 0..map.n_rows() {
            let s = map.shard_of(RowId(row));
            prop_assert!(s < map.n_shards(), "row {row} homed by out-of-range shard {s}");
            let owners = (0..map.n_shards())
                .filter(|&c| map.rows_of(c).contains(&row))
                .count();
            prop_assert_eq!(owners, 1, "row {} owned by {} shards", row, owners);
            prop_assert!(map.rows_of(s).contains(&row));
        }
    }

    /// Disjoint cover: the per-shard row counts sum to the model and
    /// local/global index translation round-trips through every shard.
    #[test]
    fn prop_shards_disjointly_cover_the_model(
        n_rows in 1usize..200,
        n_shards in 1usize..9,
        hash_seed in prop::option::of(0u64..=u64::MAX),
    ) {
        let map = build(n_rows, n_shards, hash_seed);
        let total: usize = (0..map.n_shards()).map(|s| map.shard_rows(s)).sum();
        prop_assert_eq!(total, map.n_rows());
        let mut seen = vec![false; map.n_rows()];
        for s in 0..map.n_shards() {
            prop_assert_eq!(map.rows_of(s).len(), map.shard_rows(s));
            for (local, &row) in map.rows_of(s).iter().enumerate() {
                prop_assert!(!seen[row], "row {} appears in two shards", row);
                seen[row] = true;
                prop_assert_eq!(map.to_global(s, RowId(local)), RowId(row));
                prop_assert_eq!(map.to_local(RowId(row)), RowId(local));
                prop_assert_eq!(map.shard_of(RowId(row)), s);
            }
        }
        prop_assert!(seen.iter().all(|&v| v), "cover has a hole");
    }

    /// One shard is the identity map, whatever the mode or seed: local
    /// and global ids coincide, which is why a single-shard plane runs
    /// the exact pre-shard engine.
    #[test]
    fn prop_one_shard_is_the_identity(n_rows in 1usize..200, seed in 0u64..=u64::MAX) {
        for map in [
            ShardMap::contiguous(n_rows, 1),
            ShardMap::seeded_hash(n_rows, 1, seed),
        ] {
            prop_assert!(map.is_identity());
            prop_assert_eq!(map.shard_rows(0), n_rows);
            for row in 0..n_rows {
                prop_assert_eq!(map.shard_of(RowId(row)), 0);
                prop_assert_eq!(map.to_local(RowId(row)), RowId(row));
                prop_assert_eq!(map.to_global(0, RowId(row)), RowId(row));
            }
        }
    }

    /// Contiguous mode keeps ranges in order: global ids within a
    /// shard are consecutive and shard boundaries are monotone — the
    /// property the row engine's per-shard mandatory prefix relies on.
    #[test]
    fn prop_contiguous_ranges_are_ordered(n_rows in 1usize..200, n_shards in 1usize..9) {
        let map = ShardMap::contiguous(n_rows, n_shards);
        let mut expect = 0usize;
        for s in 0..map.n_shards() {
            for &row in map.rows_of(s) {
                prop_assert_eq!(row, expect, "contiguous map out of order at shard {}", s);
                expect += 1;
            }
        }
        prop_assert_eq!(expect, n_rows);
    }
}
