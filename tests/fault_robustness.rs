//! Cross-crate robustness invariants of the fault-injection subsystem,
//! exercised end-to-end through the `rog` facade: the empty plan is
//! byte-free, faulted runs are thread-count invariant, and dynamic
//! membership (ROG) beats static membership (BSP) under churn.

mod common;

use common::small_cluster_cfg as base;
use rog::prelude::*;
use rog::trainer::report::runs_to_json;

/// The zero-cost-when-unused guarantee, checked at the serialized-run
/// level: a run with an explicitly empty `FaultPlan` must produce the
/// exact same JSON as a run with no plan at all.
#[test]
fn empty_fault_plan_is_byte_identical_at_the_json_level() {
    let no_plan = base(Strategy::Rog { threshold: 4 }).options().run().metrics;
    let mut cfg = base(Strategy::Rog { threshold: 4 });
    cfg.fault_plan = Some(FaultPlan::new());
    let empty_plan = cfg.options().run().metrics;
    assert_eq!(
        runs_to_json(std::slice::from_ref(&no_plan)),
        runs_to_json(std::slice::from_ref(&empty_plan))
    );
}

/// A faulted run (departure + resync + blackout) must be bit-identical
/// for any compute-pool width, like every fault-free run.
#[test]
fn faulted_runs_are_thread_count_invariant() {
    let mut cfg = base(Strategy::Rog { threshold: 4 });
    cfg.fault_plan = Some(
        FaultPlan::new()
            .worker_offline(1, 30.0, 70.0)
            .link_blackout(0, 90.0, 100.0),
    );
    rog::trainer::compute::set_thread_override(Some(1));
    let serial = cfg.options().run().metrics;
    rog::trainer::compute::set_thread_override(Some(4));
    let parallel = cfg.options().run().metrics;
    rog::trainer::compute::set_thread_override(None);
    common::assert_identical_runs(&serial, &parallel, "faulted run, threads 1 vs 4");
}

/// The robustness headline: under the same 60 s worker outage, ROG's
/// dynamic membership keeps the survivor training with bounded stall,
/// while BSP's static barrier blocks it for the whole outage.
#[test]
fn dynamic_membership_beats_static_membership_under_churn() {
    let plan = FaultPlan::new().worker_offline(1, 30.0, 90.0);
    let fault_free = base(Strategy::Rog { threshold: 4 }).options().run().metrics;
    let mut rog_cfg = base(Strategy::Rog { threshold: 4 });
    rog_cfg.fault_plan = Some(plan.clone());
    let rog_run = rog_cfg.options().run().metrics;
    let mut bsp_cfg = base(Strategy::Bsp);
    bsp_cfg.fault_plan = Some(plan);
    let bsp_run = bsp_cfg.options().run().metrics;
    assert!(
        rog_run.mean_iterations > fault_free.mean_iterations * 0.6,
        "ROG under churn {} vs fault-free {}",
        rog_run.mean_iterations,
        fault_free.mean_iterations
    );
    assert!(
        rog_run.stall_secs < bsp_run.stall_secs,
        "ROG stalled {} s, BSP {} s",
        rog_run.stall_secs,
        bsp_run.stall_secs
    );
    assert!(
        bsp_run.stall_secs > 40.0,
        "BSP should block for most of the 60 s outage, stalled {} s",
        bsp_run.stall_secs
    );
}
