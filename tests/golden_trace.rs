//! Golden-trace snapshot tests: the event journal of a (config, seed)
//! pair is a canonical artifact. Each scenario is regenerated at 1, 2
//! and 8 compute threads and byte-diffed against the gzipped golden
//! journal checked into `tests/golden/`.
//!
//! To refresh the goldens after an intentional engine change:
//!
//! ```text
//! ROG_UPDATE_GOLDEN=1 cargo test -p rog --test golden_trace
//! ```

mod common;

use std::path::PathBuf;

use rog::obs::{gzip_compress, gzip_decompress};
use rog::prelude::*;
use rog::trainer::compute;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.jsonl.gz"))
}

/// The two snapshot scenarios: ROG on the paper's unstable indoor
/// channel, and the BSP baseline under bursty packet loss (exercising
/// the reliable-transport retransmit/backoff events).
fn scenarios() -> Vec<(&'static str, ExperimentConfig)> {
    let mut rog_indoor = common::small_cluster_cfg(Strategy::Rog { threshold: 4 });
    rog_indoor.environment = Environment::Indoor;
    rog_indoor.duration_secs = 60.0;
    let mut bsp_loss = common::small_cluster_cfg(Strategy::Bsp);
    bsp_loss.duration_secs = 60.0;
    bsp_loss.loss = Some(LossConfig::gilbert_elliott(bsp_loss.seed, 0.10));
    vec![("rog_indoor", rog_indoor), ("bsp_loss", bsp_loss)]
}

/// One test drives every scenario and thread count: the thread override
/// is process-global, so interleaving with other `#[test]`s would race.
#[test]
fn golden_traces_are_byte_stable_across_thread_counts() {
    let update = std::env::var("ROG_UPDATE_GOLDEN").is_ok();
    for (name, cfg) in scenarios() {
        let mut journals = Vec::new();
        for threads in [1usize, 2, 8] {
            compute::set_thread_override(Some(threads));
            let journal = cfg
                .options()
                .traced(true)
                .run()
                .journal
                .expect("traced run");
            journals.push((threads, journal.to_jsonl()));
        }
        compute::set_thread_override(None);
        let (_, reference) = &journals[0];
        assert!(!reference.is_empty(), "{name}: traced run emitted nothing");
        for (threads, jsonl) in &journals[1..] {
            assert_eq!(
                jsonl, reference,
                "{name}: journal differs between 1 and {threads} compute threads"
            );
        }
        let path = golden_path(name);
        if update {
            std::fs::write(&path, gzip_compress(reference.as_bytes())).expect("write golden");
            continue;
        }
        let golden_gz = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: cannot read golden {path:?}: {e}\n\
                 (regenerate with ROG_UPDATE_GOLDEN=1)"
            )
        });
        let golden =
            String::from_utf8(gzip_decompress(&golden_gz).expect("golden gunzips")).expect("utf8");
        assert_eq!(
            reference, &golden,
            "{name}: journal drifted from the golden trace \
             (ROG_UPDATE_GOLDEN=1 refreshes it if the change is intentional)"
        );
    }
}
