//! Fleet-scale regression gates: the edge-aggregator tier must be
//! observationally inert (a hierarchical run is byte-identical to the
//! flat run once its extra accounting records are stripped), 256-worker
//! runs must be deterministic and compute-thread invariant, and
//! aggregator outages must be deterministic and actually stall the
//! members they sever.

mod common;

use common::{fleet_cluster_cfg, scenario_matrix};
use rog::prelude::*;
use rog::trainer::compute;

fn traced(cfg: &ExperimentConfig) -> RunOutcome {
    cfg.options().traced(true).run()
}

/// Removes the `"seq":N,` field from one journal line: aggregator
/// merge records consume sequence numbers, shifting every later
/// record's `seq` without changing anything else.
fn without_seq(line: &str) -> String {
    let Some(i) = line.find("\"seq\":") else {
        return line.to_owned();
    };
    let Some(j) = line[i..].find(',') else {
        return line.to_owned();
    };
    format!("{}{}", &line[..i], &line[i + j + 1..])
}

/// Normalizes a hierarchical journal for comparison against its flat
/// twin: drop `agg_merge` records, drop the shifted `seq` counters,
/// and erase the `+agg{n}` segment from the run name in the header.
fn normalized(journal: &str, aggs: usize) -> String {
    journal
        .replace(&format!("+agg{aggs}"), "")
        .lines()
        .filter(|l| !l.contains("\"ev\":\"agg_merge\""))
        .map(without_seq)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Bit-exact equality of every engine-reported metric except the run
/// name (which legitimately differs by the `+agg{n}` segment).
fn assert_same_run_modulo_name(flat: &RunMetrics, hier: &RunMetrics, what: &str) {
    assert_eq!(flat.checkpoints, hier.checkpoints, "checkpoints: {what}");
    assert_eq!(
        flat.mean_iterations, hier.mean_iterations,
        "iterations: {what}"
    );
    assert_eq!(flat.total_energy_j, hier.total_energy_j, "energy: {what}");
    assert_eq!(
        flat.useful_bytes.to_bits(),
        hier.useful_bytes.to_bits(),
        "useful bytes: {what}"
    );
    assert_eq!(
        flat.wasted_bytes.to_bits(),
        hier.wasted_bytes.to_bits(),
        "wasted bytes: {what}"
    );
    assert_eq!(
        flat.lost_bytes.to_bits(),
        hier.lost_bytes.to_bits(),
        "lost bytes: {what}"
    );
    assert_eq!(
        flat.stall_secs.to_bits(),
        hier.stall_secs.to_bits(),
        "stall: {what}"
    );
    assert_eq!(
        flat.final_model_divergence, hier.final_model_divergence,
        "divergence: {what}"
    );
}

/// The aggregator tier is pure accounting: for every ROG scenario in
/// the shared matrix, a hierarchical run reproduces the flat run's
/// metrics bit-for-bit and its journal byte-for-byte once the
/// aggregator records are stripped.
#[test]
fn hierarchical_topology_is_observationally_inert() {
    for (name, cfg) in scenario_matrix() {
        if !cfg.strategy.is_row_granular() {
            continue;
        }
        let flat = traced(&cfg);
        for aggs in [1usize, 2] {
            let hier = traced(&ExperimentConfig {
                n_aggregators: aggs,
                ..cfg.clone()
            });
            let what = format!("{name} @ {aggs} aggregators");
            assert!(
                hier.metrics.name.contains(&format!("+agg{aggs}")),
                "hierarchical run is not labeled: {what}"
            );
            assert_same_run_modulo_name(&flat.metrics, &hier.metrics, &what);
            assert!(
                hier.stats.agg_flushes > 0,
                "no merge windows flushed: {what}"
            );
            assert!(
                hier.stats.agg_upstream_rows <= hier.stats.agg_raw_rows,
                "merge expanded traffic: {what}"
            );
            let flat_j = flat.journal.as_ref().expect("traced").to_jsonl();
            let hier_j = hier.journal.as_ref().expect("traced").to_jsonl();
            assert_eq!(
                normalized(&flat_j, aggs),
                normalized(&hier_j, aggs),
                "journal differs beyond aggregator records: {what}"
            );
        }
    }
}

/// A 256-worker, 4-shard, 8-aggregator run is a pure function of its
/// config: byte-identical when re-run and at every compute-thread
/// count. One test drives all thread counts because the override is
/// process-global.
#[test]
fn fleet_256_is_deterministic_and_thread_invariant() {
    let cfg = ExperimentConfig {
        n_aggregators: 8,
        ..fleet_cluster_cfg(256, 4)
    };
    compute::set_thread_override(Some(1));
    let base = traced(&cfg);
    let base_journal = base.journal.as_ref().expect("traced").to_jsonl();
    assert!(base.stats.sim_events > 0, "run made no progress");
    assert!(base.stats.peak_version_bytes > 0);
    for threads in [2usize, 8] {
        compute::set_thread_override(Some(threads));
        let again = traced(&cfg);
        compute::set_thread_override(None);
        assert_eq!(base.stats, again.stats, "fleet stats differ @ {threads}");
        assert_same_run_modulo_name(
            &base.metrics,
            &again.metrics,
            &format!("256 workers @ {threads} threads"),
        );
        assert_eq!(base.metrics.name, again.metrics.name);
        assert_eq!(
            base_journal,
            again.journal.as_ref().expect("traced").to_jsonl(),
            "journal differs @ {threads} threads"
        );
    }
}

/// An aggregator outage stalls exactly its members, deterministically:
/// two runs of the same faulted config are byte-identical, the journal
/// records the `agg_down`/`agg_up` edges, and the outage costs strictly
/// more stall time than the clean run.
#[test]
fn aggregator_outage_is_deterministic_and_stalls_members() {
    let clean = ExperimentConfig {
        n_aggregators: 2,
        duration_secs: 60.0,
        ..fleet_cluster_cfg(8, 2)
    };
    let faulted = ExperimentConfig {
        fault_plan: Some(FaultPlan::new().aggregator_outage(0, 10.0, 40.0)),
        ..clean.clone()
    };
    let a = traced(&faulted);
    let b = traced(&faulted);
    assert_eq!(a.stats, b.stats, "faulted run not deterministic");
    let a_j = a.journal.as_ref().expect("traced").to_jsonl();
    assert_eq!(
        a_j,
        b.journal.as_ref().expect("traced").to_jsonl(),
        "faulted journal not deterministic"
    );
    assert!(
        a_j.contains("\"kind\":\"agg_down\"") && a_j.contains("\"kind\":\"agg_up\""),
        "journal is missing the aggregator fault edges"
    );
    let base = traced(&clean);
    assert!(
        a.metrics.stall_secs > base.metrics.stall_secs,
        "a 30 s aggregator outage must add stall time ({} vs {})",
        a.metrics.stall_secs,
        base.metrics.stall_secs
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random small topologies: hierarchical ≡ flat for any
        /// (workers, aggregators, threshold, seed) draw.
        #[test]
        fn hierarchical_matches_flat_on_random_topologies(
            raw in (2usize..6, 1usize..6, 2u32..8, 0u64..1000)
        ) {
            let (workers, raw_aggs, threshold, seed) = raw;
            let aggs = 1 + raw_aggs % workers; // 1..=workers
            let flat = ExperimentConfig {
                // `proptest::prelude` also exports a `Strategy` trait,
                // so the config enum needs its full path here.
                strategy: rog::prelude::Strategy::Rog { threshold },
                seed,
                duration_secs: 20.0,
                ..fleet_cluster_cfg(workers, 2)
            };
            let hier = ExperimentConfig {
                n_aggregators: aggs,
                ..flat.clone()
            };
            let f = flat.options().run();
            let h = hier.options().run();
            assert_same_run_modulo_name(
                &f.metrics,
                &h.metrics,
                &format!("w={workers} a={aggs} t={threshold} seed={seed}"),
            );
            prop_assert_eq!(f.stats.sim_events, h.stats.sim_events);
            prop_assert_eq!(f.stats.queue_scheduled, h.stats.queue_scheduled);
            prop_assert_eq!(f.stats.peak_version_bytes, h.stats.peak_version_bytes);
        }
    }
}
