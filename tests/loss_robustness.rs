//! End-to-end packet-loss robustness: a zero-loss configuration is
//! byte-identical to a run with no loss model at all (regression gate),
//! lossy runs replay bit-for-bit independent of host parallelism, and
//! under bursty Gilbert–Elliott loss ROG keeps completing iterations
//! within its staleness bound while the reliable-only BSP baseline's
//! stall residency visibly grows.

mod common;

use common::{assert_identical_runs, small_cluster_cfg as cfg};
use rog::prelude::*;
use rog::trainer::compute;

#[test]
fn zero_loss_config_is_byte_identical_to_loss_free_run() {
    for strategy in [Strategy::Rog { threshold: 4 }, Strategy::Bsp] {
        let base = cfg(strategy).options().run().metrics;
        for zero in [LossConfig::off(), LossConfig::iid(9, 0.0)] {
            let mut c = cfg(strategy);
            c.loss = Some(zero);
            let m = c.options().run().metrics;
            assert_identical_runs(&base, &m, &base.name);
            assert_eq!(m.lost_bytes, 0.0);
            assert_eq!(m.corrupt_bytes, 0.0);
        }
    }
}

#[test]
fn lossy_runs_are_deterministic_and_thread_invariant() {
    let mut c = cfg(Strategy::Rog { threshold: 4 });
    c.loss = Some(LossConfig::gilbert_elliott(c.seed, 0.10));
    compute::set_thread_override(Some(1));
    let serial = c.options().run().metrics;
    compute::set_thread_override(Some(4));
    let parallel = c.options().run().metrics;
    compute::set_thread_override(None);
    let again = c.options().run().metrics;
    assert!(serial.name.contains("+loss"), "{}", serial.name);
    assert_identical_runs(&serial, &parallel, "threads 1 vs 4");
    assert_identical_runs(&serial, &again, "replay");
}

#[test]
fn lossy_rog_accounts_lost_bytes_and_keeps_training() {
    let base = cfg(Strategy::Rog { threshold: 4 }).options().run().metrics;
    let mut c = cfg(Strategy::Rog { threshold: 4 });
    c.loss = Some(LossConfig::gilbert_elliott(c.seed, 0.10));
    let m = c.options().run().metrics;
    assert!(m.lost_bytes > 0.0, "loss model must drop bytes");
    assert!(m.useful_bytes > 0.0);
    // Best-effort gradient rows degrade instead of blocking: ROG keeps
    // the large majority of its loss-free iteration throughput.
    assert!(
        m.mean_iterations > base.mean_iterations * 0.5,
        "lossy {} vs loss-free {}",
        m.mean_iterations,
        base.mean_iterations
    );
    // And training does not collapse.
    let first = m.checkpoints.first().expect("ckpt").metric;
    let last = m.checkpoints.last().expect("ckpt").metric;
    assert!(last > first - 3.0, "accuracy collapsed: {first} -> {last}");
}

#[test]
fn reliable_only_bsp_stalls_more_under_loss_than_rog() {
    let loss = 0.10;
    let bsp_clean = cfg(Strategy::Bsp).options().run().metrics;
    let mut bsp_lossy_cfg = cfg(Strategy::Bsp);
    bsp_lossy_cfg.loss = Some(LossConfig::gilbert_elliott(bsp_lossy_cfg.seed, loss));
    let bsp_lossy = bsp_lossy_cfg.options().run().metrics;
    // Every lost chunk blocks the whole-model transfer on a backed-off
    // retransmit, so loss directly grows BSP's stall residency.
    assert!(
        bsp_lossy.stall_secs > bsp_clean.stall_secs,
        "BSP stall under loss {} vs clean {}",
        bsp_lossy.stall_secs,
        bsp_clean.stall_secs
    );
    assert!(
        bsp_lossy.mean_iterations < bsp_clean.mean_iterations,
        "loss must cost BSP iterations: {} vs {}",
        bsp_lossy.mean_iterations,
        bsp_clean.mean_iterations
    );
    // ROG under the same loss keeps a larger share of its throughput
    // than BSP keeps of its own: row-granular best-effort degradation
    // beats blocking retransmits.
    let rog_clean = cfg(Strategy::Rog { threshold: 4 }).options().run().metrics;
    let mut rog_lossy_cfg = cfg(Strategy::Rog { threshold: 4 });
    rog_lossy_cfg.loss = Some(LossConfig::gilbert_elliott(rog_lossy_cfg.seed, loss));
    let rog_lossy = rog_lossy_cfg.options().run().metrics;
    let rog_keep = rog_lossy.mean_iterations / rog_clean.mean_iterations;
    let bsp_keep = bsp_lossy.mean_iterations / bsp_clean.mean_iterations;
    assert!(
        rog_keep > bsp_keep,
        "ROG kept {rog_keep:.3} of throughput, BSP kept {bsp_keep:.3}"
    );
}

#[test]
fn loss_windows_from_fault_plans_drop_bytes() {
    let mut c = cfg(Strategy::Rog { threshold: 4 });
    c.fault_plan = Some(FaultPlan::new().link_loss(0, 20.0, 100.0, 0.15));
    let m = c.options().run().metrics;
    assert!(m.name.contains("+loss"), "{}", m.name);
    assert!(m.lost_bytes > 0.0, "windowed loss must drop bytes");
    let m2 = c.options().run().metrics;
    assert_identical_runs(&m, &m2, "windowed loss replay");
}
