//! Engine-level invariants that must hold for every strategy and mode:
//! timeline conservation, energy consistency, throughput ordering.

mod common;

use rog::net::Trace;
use rog::prelude::*;
use rog::tensor::rng::DetRng;

fn base() -> ExperimentConfig {
    ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Outdoor,
        strategy: Strategy::Bsp,
        model_scale: ModelScale::Small,
        n_workers: 3,
        n_laptop_workers: 1,
        duration_secs: 240.0,
        eval_every: 10,
        seed: 11,
        ..ExperimentConfig::default()
    }
}

fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Bsp,
        Strategy::Ssp { threshold: 4 },
        Strategy::Asp,
        Strategy::Flown {
            min_threshold: 2,
            max_threshold: 12,
        },
        Strategy::Rog { threshold: 4 },
    ]
}

#[test]
fn composition_times_are_conserved() {
    for strategy in all_strategies() {
        let m = ExperimentConfig { strategy, ..base() }
            .options()
            .run()
            .metrics;
        let c = m.composition;
        assert!(c.compute > 0.0, "{}", strategy.name());
        assert!(c.communicate > 0.0, "{}", strategy.name());
        assert!(c.stall >= 0.0, "{}", strategy.name());
        // Total busy time across workers cannot exceed workers × budget.
        let busy = c.total() * m.mean_iterations * 3.0;
        assert!(
            busy <= 3.0 * m.duration * 1.02,
            "{}: busy {busy} exceeds budget",
            strategy.name()
        );
    }
}

#[test]
fn energy_matches_composition_within_bounds() {
    // Cluster energy must sit between all-stall power and all-compute
    // power over the run (robot workers only: 2 of 3 here).
    for strategy in [Strategy::Bsp, Strategy::Rog { threshold: 4 }] {
        let m = ExperimentConfig { strategy, ..base() }
            .options()
            .run()
            .metrics;
        let robots = 2.0;
        let lo = 4.0 * m.duration * robots; // below stall power floor
        let hi = 13.35 * m.duration * robots * 1.01;
        assert!(
            m.total_energy_j > lo && m.total_energy_j < hi,
            "{}: energy {} outside [{lo}, {hi}]",
            strategy.name(),
            m.total_energy_j
        );
    }
}

#[test]
fn asp_never_stalls_and_outpaces_bsp() {
    let bsp = base().options().run().metrics;
    let asp = ExperimentConfig {
        strategy: Strategy::Asp,
        ..base()
    }
    .options()
    .run()
    .metrics;
    assert!(
        asp.composition.stall < 0.05,
        "ASP must not stall: {}",
        asp.composition.stall
    );
    assert!(
        asp.mean_iterations >= bsp.mean_iterations,
        "ASP {} !>= BSP {}",
        asp.mean_iterations,
        bsp.mean_iterations
    );
}

#[test]
fn throughput_ordering_matches_gate_tightness() {
    // Looser gates can only help throughput: BSP <= SSP-4 <= SSP-20.
    let run = |s| {
        ExperimentConfig {
            strategy: s,
            ..base()
        }
        .options()
        .run()
        .metrics
        .mean_iterations
    };
    let bsp = run(Strategy::Bsp);
    let ssp4 = run(Strategy::Ssp { threshold: 4 });
    let ssp20 = run(Strategy::Ssp { threshold: 20 });
    assert!(bsp <= ssp4 + 1.0, "BSP {bsp} vs SSP-4 {ssp4}");
    assert!(ssp4 <= ssp20 + 1.0, "SSP-4 {ssp4} vs SSP-20 {ssp20}");
}

#[test]
fn rog_throughput_rises_with_threshold() {
    let run = |t| {
        ExperimentConfig {
            strategy: Strategy::Rog { threshold: t },
            ..base()
        }
        .options()
        .run()
        .metrics
        .mean_iterations
    };
    let r4 = run(4);
    let r20 = run(20);
    assert!(r4 <= r20 + 1.0, "ROG-4 {r4} vs ROG-20 {r20}");
}

#[test]
fn checkpoint_energy_is_monotonic_everywhere() {
    for strategy in all_strategies() {
        let m = ExperimentConfig { strategy, ..base() }
            .options()
            .run()
            .metrics;
        common::assert_checkpoints_monotone(&m, &strategy.name());
    }
}

#[test]
fn model_divergence_is_bounded_by_the_gate() {
    // Lockstep (BSP) keeps replicas near-identical; bounded staleness
    // keeps divergence small relative to the model norm; ASP may drift
    // further but must not explode on a short run.
    let div = |s| {
        ExperimentConfig {
            strategy: s,
            ..base()
        }
        .options()
        .run()
        .metrics
        .final_model_divergence
    };
    let bsp = div(Strategy::Bsp);
    let rog = div(Strategy::Rog { threshold: 4 });
    let asp = div(Strategy::Asp);
    assert!(bsp < 0.05, "BSP replicas should track closely: {bsp}");
    assert!(rog < 0.25, "ROG divergence should be bounded: {rog}");
    assert!(asp < 1.0, "ASP should not explode on a short run: {asp}");
    assert!(bsp <= rog + 0.05, "BSP {bsp} vs ROG {rog}");
}

#[test]
fn conv_workload_runs_distributed() {
    let m = ExperimentConfig {
        workload: WorkloadKind::CrudaConv,
        strategy: Strategy::Rog { threshold: 4 },
        ..base()
    }
    .options()
    .run()
    .metrics;
    assert!(m.mean_iterations > 5.0);
    assert!(!m.checkpoints.is_empty());
}

#[test]
fn replayed_traces_reproduce_generated_runs() {
    // The artifact path as an integration test (the full binary does
    // this at paper scale).
    use rog::net::io;
    let cfg = base();
    let reference = cfg.options().run().metrics;
    // Regenerate the same traces the cluster builder derives.
    let root = DetRng::new(cfg.seed);
    let profile = cfg.environment.profile();
    let trace_len: f64 = 300.0;
    let capacity = profile.generate(root.fork(0x50).seed(), trace_len);
    let links: Vec<Trace> = (0..3)
        .map(|w| profile.generate_link(root.fork(0x60 + w as u64).seed(), trace_len))
        .collect();
    // CSV round trip.
    let capacity = io::trace_from_csv(&io::trace_to_csv(&capacity)).expect("parses");
    let links: Vec<Trace> = links
        .iter()
        .map(|l| io::trace_from_csv(&io::trace_to_csv(l)).expect("parses"))
        .collect();
    let replayed = ExperimentConfig {
        capacity_trace: Some(capacity),
        link_traces: Some(links),
        ..cfg
    }
    .options()
    .run()
    .metrics;
    assert_eq!(replayed.checkpoints, reference.checkpoints);
    assert_eq!(replayed.mean_iterations, reference.mean_iterations);
}
