//! Codec-ladder engine tests: every `RowCodec` rung drives the row
//! engine deterministically, the explicit one-bit selection is
//! byte-identical to the default, and the `auto` selector journals its
//! per-link switches.
//!
//! One `#[test]` drives every scenario and thread count: the
//! compute-thread override is process-global, so interleaving with
//! other `#[test]`s would race.

mod common;

use rog::prelude::*;
use rog::trainer::compute;

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        duration_secs: 60.0,
        ..common::small_cluster_cfg(Strategy::Rog { threshold: 4 })
    }
}

fn run_traced(cfg: &ExperimentConfig, codec: CodecChoice) -> RunOutcome {
    cfg.options().codec(codec).traced(true).run()
}

/// Mean per-row `push_end` payload observed in a journal — the
/// row-codec bytes actually shipped uplink, before wire framing,
/// normalized by row count (pushes carry varying numbers of rows, so
/// per-push means would compare different amounts of work).
fn push_bytes_per_row(jsonl: &str) -> f64 {
    let (mut bytes, mut rows) = (0.0, 0.0);
    for line in jsonl.lines().filter(|l| l.contains("\"ev\":\"push_end\"")) {
        let rec = rog::obs::Record::parse(line).expect("journal line parses");
        bytes += rec.num("bytes").expect("push_end has bytes");
        rows += rec.num("rows").expect("push_end has rows");
    }
    bytes / rows
}

#[test]
fn every_codec_is_deterministic_and_onebit_stays_byte_identical() {
    // --- explicit one-bit == default: the redesign may not move a
    // single byte of the seed scenario.
    let base = cfg();
    let default_run = base.options().traced(true).run();
    let explicit = run_traced(&base, CodecChoice::OneBit);
    common::assert_identical_runs(&default_run.metrics, &explicit.metrics, "onebit vs default");
    assert_eq!(
        default_run.journal.as_ref().expect("traced").to_jsonl(),
        explicit.journal.as_ref().expect("traced").to_jsonl(),
        "explicit --codec onebit must be byte-identical to the default"
    );
    // Wall-clock is fixed, so cheaper rows buy *more* iterations, not
    // fewer total bytes — the wire saving shows up per push payload.
    let onebit_push_bytes =
        push_bytes_per_row(&default_run.journal.as_ref().expect("traced").to_jsonl());

    // --- every rung replays byte-identically across compute-thread
    // counts and makes progress. The lossy-auto variant exists to give
    // the selector a stressed link to act on.
    let mut lossy_auto = cfg();
    lossy_auto.fault_plan = Some(FaultPlan::new().link_loss(1, 15.0, 55.0, 0.6));
    let rungs: Vec<(&str, ExperimentConfig, CodecChoice)> = vec![
        ("sparse", cfg(), CodecChoice::Sparse),
        ("q2", cfg(), CodecChoice::Quant { bits: 2 }),
        ("q4", cfg(), CodecChoice::Quant { bits: 4 }),
        ("q8", cfg(), CodecChoice::Quant { bits: 8 }),
        ("topk", cfg(), CodecChoice::TopK { keep_milli: 100 }),
        ("auto", cfg(), CodecChoice::Auto),
        ("auto+loss", lossy_auto, CodecChoice::Auto),
    ];
    for (name, scenario, codec) in &rungs {
        let mut journals = Vec::new();
        let mut metrics = Vec::new();
        for threads in [1usize, 2, 8] {
            compute::set_thread_override(Some(threads));
            let out = run_traced(scenario, *codec);
            compute::set_thread_override(None);
            journals.push((threads, out.journal.as_ref().expect("traced").to_jsonl()));
            metrics.push(out.metrics);
        }
        let (_, reference) = &journals[0];
        for (threads, jsonl) in &journals[1..] {
            assert_eq!(
                jsonl, reference,
                "{name}: journal differs between 1 and {threads} compute threads"
            );
        }
        assert!(
            metrics[0].mean_iterations > 0.0,
            "{name}: run made no progress"
        );
        assert!(
            metrics[0].name.contains(&format!("+{}", codec.name())),
            "{name}: run name {} misses the codec tag",
            metrics[0].name
        );

        // Content-sized rungs genuinely change the wire: the sparse
        // encoding's dense fallback caps every row at the one-bit
        // size, so a sparse run must ship strictly fewer bytes.
        if *name == "sparse" {
            let per_row = push_bytes_per_row(reference);
            assert!(
                per_row < onebit_push_bytes,
                "sparse shipped {per_row} bytes per pushed row, one-bit {onebit_push_bytes}"
            );
        }

        // The selector journals every switch; a stressed link must
        // produce at least one, and a calm cluster none.
        let selects = reference
            .lines()
            .filter(|l| l.contains("\"ev\":\"codec_select\""))
            .count();
        match *name {
            "auto+loss" => assert!(
                selects > 0,
                "auto never reacted to a 60% lossy link ({selects} codec_select events)"
            ),
            "auto" => {}
            _ => assert_eq!(selects, 0, "{name}: non-auto run journaled codec_select"),
        }
    }
}
