//! Regression corpus replay: every checked-in `.repro` under
//! `tests/corpus/` must pass the full differential invariant harness.
//!
//! Corpus entries are minimal repros of scenarios that once exposed a
//! bug (or hand-curated coverage of a dimension the generator reaches
//! rarely); replaying them on every CI run keeps fixed bugs fixed.
//! Triage workflow: `rogctl fuzz --replay tests/corpus/<name>.repro`
//! re-runs one entry with full violation output.
//!
//! The differential checker flips the process-global compute-thread
//! override, so this file holds exactly one `#[test]` — it must not
//! share a binary with other engine tests.

use std::path::Path;

use rog::fuzz::{check_scenario, Scenario};

#[test]
fn every_corpus_entry_passes_the_harness() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "corpus at {} must not be empty",
        dir.display()
    );

    let mut failures = Vec::new();
    for path in &entries {
        let name = path.file_name().expect("file name").to_string_lossy();
        let text = std::fs::read_to_string(path).expect("readable corpus entry");
        let sc = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("corpus entry {name} does not parse: {e}"));
        // The checked-in text is canonical: writing the parsed scenario
        // back must reproduce it byte-for-byte, so entries cannot
        // silently drift from what `rogctl fuzz` would emit.
        assert_eq!(sc.to_repro(), text, "corpus entry {name} is not canonical");
        let outcome = check_scenario(&sc);
        if !outcome.passed() {
            failures.push(format!("{name}: {:?}", outcome.violations));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus regressions:\n{}",
        failures.join("\n")
    );
}
