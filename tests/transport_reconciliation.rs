//! Live-cluster smoke + reconciliation: one in-process server and two
//! worker threads train the small CRUDA workload over real localhost
//! UDP/TCP sockets, and the server's journal-derived `TraceSummary`
//! composition must (a) agree bitwise with its own `RunMetrics` and
//! (b) land in the same regime as a sim run of the same config.
//!
//! The socket path is wall-clock paced and inherently non-bit-exact,
//! so cross-backend comparisons use generous tolerances; the bitwise
//! claim is only between the live server's own two views, which share
//! one timeline by construction.

use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use rog::obs::TraceSummary;
use rog::prelude::*;

fn live_cfg() -> ExperimentConfig {
    ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Stable,
        strategy: Strategy::Rog { threshold: 4 },
        model_scale: ModelScale::Small,
        n_workers: 2,
        n_laptop_workers: 0,
        duration_secs: 60.0,
        eval_every: 5,
        seed: 42,
        trace: true,
        ..ExperimentConfig::default()
    }
}

#[test]
fn live_cluster_reconciles_with_a_sim_run() {
    let cfg = live_cfg();

    // Port 0: the OS picks a free TCP port; workers learn it from the
    // handle after bind. Simplest race-free localhost arrangement is a
    // fixed high port per test binary; retry a few candidates.
    let mut outcome = None;
    for port in [47117u16, 47217, 47317, 47417] {
        let listen = format!("127.0.0.1:{port}");
        let serve_cfg = cfg.clone();
        let serve_listen = listen.clone();
        let server = thread::spawn(move || {
            rog::trainer::live::serve(
                &serve_cfg,
                // speedup must leave the per-iteration wall budget
                // (compute_secs / speedup) larger than the real debug-mode
                // gradient step (~30ms), or recorded compute inflates past
                // the sim's virtual pacing.
                &ServeOptions {
                    listen: serve_listen,
                    speedup: 40.0,
                    join_timeout_secs: 30.0,
                },
            )
        });
        let workers: Vec<_> = (0..cfg.n_workers)
            .map(|_| {
                let wcfg = cfg.clone();
                let connect = listen.clone();
                thread::spawn(move || {
                    rog::trainer::live::join(
                        &wcfg,
                        &JoinOptions {
                            connect,
                            ..JoinOptions::default()
                        },
                    )
                })
            })
            .collect();
        let server_out = server.join().expect("server thread panicked");
        let worker_outs: Vec<_> = workers
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        match server_out {
            Ok(out) => {
                for w in worker_outs {
                    let w = w.expect("worker failed while server succeeded");
                    assert!(w.metrics.mean_iterations > 0.0, "worker made no progress");
                }
                outcome = Some(out);
                break;
            }
            // Port in use (parallel test runs): try the next one.
            Err(e) if e.contains("cannot listen") => continue,
            Err(e) => panic!("serve failed: {e}"),
        }
    }
    let live = outcome.expect("no free localhost port for the smoke test");

    // Progress: both workers iterated and checkpoints were recorded.
    assert!(
        live.metrics.mean_iterations >= 3.0,
        "live cluster barely progressed: {} mean iterations",
        live.metrics.mean_iterations
    );
    assert!(
        !live.metrics.checkpoints.is_empty(),
        "no checkpoints reached the server"
    );
    assert!(live.metrics.useful_bytes > 0.0, "no useful bytes accounted");

    // (a) Bitwise: the journal replay and the metrics collector see
    // the same timelines, so composition must match exactly.
    let journal = live.journal.as_ref().expect("traced run has a journal");
    let summary = TraceSummary::from_jsonl(&journal.to_jsonl()).expect("journal parses");
    let composition = summary.composition();
    for (i, (replayed, reported)) in composition
        .iter()
        .zip([
            live.metrics.composition.compute,
            live.metrics.composition.communicate,
            live.metrics.composition.stall,
            live.metrics.composition.offline,
        ])
        .enumerate()
    {
        assert_eq!(
            replayed.to_bits(),
            reported.to_bits(),
            "journal/metrics composition[{i}] diverged: {replayed} vs {reported}"
        );
    }

    // (b) Statistical: a sim run of the same config lands in the same
    // regime. Live pacing (socket latency, scheduler noise) shifts the
    // split, so compare loosely: compute dominates both runs and the
    // live per-iteration compute cost is within 40% of sim's.
    let sim = cfg.options().traced(true).run();
    let sim_compute = sim.metrics.composition.compute;
    let live_compute = live.metrics.composition.compute;
    assert!(
        sim_compute > 0.0 && live_compute > 0.0,
        "both runs must spend compute time (sim {sim_compute}, live {live_compute})"
    );
    let ratio = live_compute / sim_compute;
    assert!(
        (0.6..=1.4).contains(&ratio),
        "per-iteration compute diverged: live {live_compute} vs sim {sim_compute} \
         (ratio {ratio:.2})"
    );
    // Both runs are gate-bounded ROG on a clean channel: stall must
    // not dominate either.
    assert!(
        live.metrics.composition.stall <= live.metrics.composition.total(),
        "stall exceeds total"
    );
}

/// A port scanner / health check / confused client connecting during
/// the join phase must be rejected, not abort the run: the real worker
/// that arrives afterwards still completes the cluster.
#[test]
fn stray_connections_do_not_abort_the_join_phase() {
    let cfg = ExperimentConfig {
        n_workers: 1,
        duration_secs: 20.0,
        ..live_cfg()
    };
    let mut outcome = None;
    for port in [47517u16, 47617, 47717, 47817] {
        let listen = format!("127.0.0.1:{port}");
        let serve_cfg = cfg.clone();
        let serve_listen = listen.clone();
        let server = thread::spawn(move || {
            rog::trainer::live::serve(
                &serve_cfg,
                &ServeOptions {
                    listen: serve_listen,
                    speedup: 40.0,
                    join_timeout_secs: 30.0,
                },
            )
        });
        // Stray client first: an implausible length prefix makes the
        // handshake fail immediately (no 10s read timeout to sit out).
        let deadline = Instant::now() + Duration::from_secs(10);
        let stray = loop {
            match TcpStream::connect(&listen) {
                Ok(s) => break Some(s),
                Err(_) if Instant::now() < deadline => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(_) => break None,
            }
        };
        let Some(mut stray) = stray else {
            // Listener never came up on this port (in use): next port.
            let _ = server.join();
            continue;
        };
        stray.write_all(&[0xFF; 8]).expect("stray write");
        stray.flush().expect("stray flush");
        // Keep the stray socket open across the run: the rejection
        // must not depend on the client hanging up.
        let wcfg = cfg.clone();
        let connect = listen.clone();
        let worker = thread::spawn(move || {
            rog::trainer::live::join(
                &wcfg,
                &JoinOptions {
                    connect,
                    ..JoinOptions::default()
                },
            )
        });
        let server_out = server.join().expect("server thread panicked");
        let worker_out = worker.join().expect("worker thread panicked");
        match server_out {
            Ok(out) => {
                worker_out.expect("worker failed while server succeeded");
                outcome = Some(out);
                drop(stray);
                break;
            }
            Err(e) if e.contains("cannot listen") => continue,
            Err(e) => panic!("serve aborted on a stray connection: {e}"),
        }
    }
    let live = outcome.expect("no free localhost port for the stray-connection test");
    assert!(
        live.metrics.mean_iterations >= 1.0,
        "cluster made no progress after rejecting the stray: {} mean iterations",
        live.metrics.mean_iterations
    );
}
