//! Helpers shared by the facade integration-test suite.
//!
//! Each test binary compiles this module independently and uses a
//! subset of it, so unused items are expected.
#![allow(dead_code)]

use rog::core::RowId;
use rog::prelude::*;
use rog::trainer::report::runs_to_json;

/// Float tolerance for exact-accounting invariants: timeline sums and
/// journal reconciliation agree on 1e-9.
pub const EPS: f64 = 1e-9;

/// Tolerance for checkpoint monotonicity: checkpoint values are
/// averaged over workers, so consecutive values may regress by float
/// error well above [`EPS`].
pub const CKPT_EPS: f64 = 1e-6;

/// The canonical small deterministic cluster — 2 robot workers, Small
/// model, stable channel, 120 virtual seconds, seed 42 — shared by the
/// fault, loss and trace suites.
pub fn small_cluster_cfg(strategy: Strategy) -> ExperimentConfig {
    ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Stable,
        strategy,
        model_scale: ModelScale::Small,
        n_workers: 2,
        n_laptop_workers: 0,
        duration_secs: 120.0,
        eval_every: 5,
        seed: 42,
        ..ExperimentConfig::default()
    }
}

/// A fleet-scale deterministic cluster: `workers` robot workers on the
/// stable channel, a `shards`-way ROG parameter plane, seed 42. The
/// Small CRUDA dataset has only 150 samples, so fleets larger than
/// that use the paper-scale dataset (every worker must get a non-empty
/// data shard); the virtual duration is kept short so 256-worker runs
/// stay cheap enough to replay at several compute-thread counts.
pub fn fleet_cluster_cfg(workers: usize, shards: usize) -> ExperimentConfig {
    let model_scale = if workers > 100 {
        ModelScale::Paper
    } else {
        ModelScale::Small
    };
    ExperimentConfig {
        workload: WorkloadKind::Cruda,
        environment: Environment::Stable,
        strategy: Strategy::Rog { threshold: 4 },
        model_scale,
        n_workers: workers,
        n_laptop_workers: 0,
        n_shards: shards,
        duration_secs: 60.0,
        eval_every: 5,
        seed: 42,
        ..ExperimentConfig::default()
    }
}

/// The regression scenario matrix shared by the shard-identity and
/// reconciliation suites: every strategy on the small cluster (the
/// full six-model spectrum plus the adaptive-bound ROG hybrid), plus
/// faulted and lossy ROG variants and a lossy hybrid variant (loss is
/// what drives its bound). Durations are trimmed to 60 virtual seconds
/// so the full matrix stays cheap to replay at several compute-thread
/// counts.
pub fn scenario_matrix() -> Vec<(&'static str, ExperimentConfig)> {
    let short = |strategy| ExperimentConfig {
        duration_secs: 60.0,
        ..small_cluster_cfg(strategy)
    };
    let mut out: Vec<(&'static str, ExperimentConfig)> = vec![
        ("bsp", short(Strategy::Bsp)),
        ("ssp4", short(Strategy::Ssp { threshold: 4 })),
        ("asp", short(Strategy::Asp)),
        (
            "flown",
            short(Strategy::Flown {
                min_threshold: 2,
                max_threshold: 12,
            }),
        ),
        (
            "dssp",
            short(Strategy::Dssp {
                min_threshold: 1,
                max_threshold: 8,
            }),
        ),
        (
            "abs",
            short(Strategy::Abs {
                min_threshold: 1,
                max_threshold: 8,
            }),
        ),
        ("rog4", short(Strategy::Rog { threshold: 4 })),
        (
            "roga",
            short(Strategy::RogAdaptive {
                min_threshold: 1,
                max_threshold: 8,
            }),
        ),
    ];
    let mut faulted = short(Strategy::Rog { threshold: 4 });
    faulted.fault_plan = Some(FaultPlan::new().worker_offline(1, 15.0, 45.0));
    out.push(("rog4+fault", faulted));
    let mut lossy = short(Strategy::Rog { threshold: 4 });
    lossy.loss = Some(LossConfig::gilbert_elliott(lossy.seed, 0.10));
    out.push(("rog4+loss", lossy));
    let mut lossy_roga = short(Strategy::RogAdaptive {
        min_threshold: 1,
        max_threshold: 8,
    });
    lossy_roga.loss = Some(LossConfig::gilbert_elliott(lossy_roga.seed, 0.10));
    out.push(("roga+loss", lossy_roga));
    out
}

/// Asserts two runs are observably identical: bit-exact byte counters,
/// equal checkpoints, and byte-equal serialized JSON reports.
pub fn assert_identical_runs(a: &RunMetrics, b: &RunMetrics, what: &str) {
    assert_eq!(a.name, b.name, "name differs: {what}");
    assert_eq!(a.checkpoints, b.checkpoints, "checkpoints differ: {what}");
    assert_eq!(
        a.mean_iterations, b.mean_iterations,
        "iterations differ: {what}"
    );
    assert_eq!(a.total_energy_j, b.total_energy_j, "energy differs: {what}");
    assert_eq!(
        a.useful_bytes.to_bits(),
        b.useful_bytes.to_bits(),
        "useful bytes differ: {what}"
    );
    assert_eq!(
        a.wasted_bytes.to_bits(),
        b.wasted_bytes.to_bits(),
        "wasted bytes differ: {what}"
    );
    assert_eq!(
        a.lost_bytes.to_bits(),
        b.lost_bytes.to_bits(),
        "lost bytes differ: {what}"
    );
    assert_eq!(
        runs_to_json(std::slice::from_ref(a)),
        runs_to_json(std::slice::from_ref(b)),
        "serialized reports differ: {what}"
    );
}

/// Asserts checkpoints are strictly ordered in iteration and monotone
/// (within [`CKPT_EPS`]) in cumulative energy. Holds for *every*
/// strategy, including ASP.
pub fn assert_checkpoints_monotone(m: &RunMetrics, what: &str) {
    for w in m.checkpoints.windows(2) {
        assert!(w[0].iter < w[1].iter, "{what}: iterations not ordered");
        assert!(
            w[0].energy_j <= w[1].energy_j + CKPT_EPS,
            "{what}: energy went backwards"
        );
    }
}

/// [`assert_checkpoints_monotone`] plus time monotonicity. Checkpoint
/// times are per-iteration means over workers, so this only holds when
/// worker progress is staleness-bounded — ASP legitimately violates it
/// (a fast worker reaches iteration N before a slow worker reaches
/// N - 10, dragging the later checkpoint's mean time backwards).
pub fn assert_checkpoints_monotone_in_time(m: &RunMetrics, what: &str) {
    assert_checkpoints_monotone(m, what);
    for w in m.checkpoints.windows(2) {
        assert!(
            w[0].time <= w[1].time + CKPT_EPS,
            "{what}: checkpoint time went backwards"
        );
    }
}

/// Length of the RSP-mandatory prefix of a ranked push plan, computed
/// through the one shared predicate (`rog::sync::gate`) the engines and
/// tests agree on.
pub fn mandatory_prefix(plan: &[RowId], row_iters: &[u64], iter: u64, threshold: u32) -> usize {
    plan.iter()
        .take_while(|&&id| rog::sync::gate::row_is_mandatory(row_iters[id.0], iter, threshold))
        .count()
}
