#!/usr/bin/env bash
# Regenerate every table and figure of the paper plus the ablations and
# extension experiments, mirroring the artifact's run_all.sh. Results
# land in results/ (CSV + console transcripts).
#
#   bash run_all.sh            # full-length runs (tens of minutes)
#   bash run_all.sh --quick    # shortened smoke runs
set -euo pipefail
cd "$(dirname "$0")"

QUICK="${1:-}"

cargo build --release -p rog-bench

BINS=(
  table1_mta
  table2_setup
  table3_power
  fig3_bandwidth
  fig1_cruda_outdoor
  fig6_cruda_indoor
  fig7_crimp_outdoor
  fig8_micro_event
  fig9_sensitivity
  fig10_threshold
  replay_trace
  ablation_granularity
  ablation_mac
  ablation_importance
  ext_convmlp
  ext_future_work
  bench_fault
)

mkdir -p results
for b in "${BINS[@]}"; do
  echo "=== $b ==="
  # shellcheck disable=SC2086
  ./target/release/"$b" $QUICK | tee "results/${b}_console.txt"
done

echo
echo "All experiments complete; artifacts are in results/."
