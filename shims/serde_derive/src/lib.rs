//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Supports exactly the shapes this workspace uses: non-generic structs
//! with named fields, and non-generic enums whose variants are unit or
//! struct variants. `#[serde(...)]` attributes are not supported (none
//! exist in the workspace). Parsing is done directly on the
//! `proc_macro` token stream so the shim needs no dependencies.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Enum: `(variant name, None)` for unit variants,
    /// `(variant name, Some(fields))` for struct variants.
    Enum(Vec<(String, Option<Vec<String>>)>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Skips `#[...]` attribute pairs starting at `i`; returns the next index.
fn skip_attrs(tts: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tts.len() {
        match (&tts[i], &tts[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tts: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tts.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tts.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses named fields from a brace-group body, returning field names.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        i = skip_vis(body, i);
        if i >= body.len() {
            break;
        }
        let TokenTree::Ident(name) = &body[i] else {
            return Err(format!("expected field name, found `{}`", body[i]));
        };
        fields.push(name.to_string());
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Consume the type: everything up to a comma at angle-depth 0.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tts, 0);
    i = skip_vis(&tts, i);
    let kind = match tts.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tts.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tts.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the serde shim"
            ));
        }
    }
    let Some(TokenTree::Group(body)) = tts.get(i) else {
        return Err(format!(
            "`{name}`: tuple/unit structs are not supported by the serde shim"
        ));
    };
    if body.delimiter() != Delimiter::Brace {
        return Err(format!(
            "`{name}`: only brace-delimited bodies are supported"
        ));
    }
    let body: Vec<TokenTree> = body.stream().into_iter().collect();
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(&body)?),
        "enum" => {
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs(&body, j);
                if j >= body.len() {
                    break;
                }
                let TokenTree::Ident(vname) = &body[j] else {
                    return Err(format!("expected variant name, found `{}`", body[j]));
                };
                let vname = vname.to_string();
                j += 1;
                match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        variants.push((vname, Some(parse_named_fields(&inner)?)));
                        j += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        return Err(format!(
                            "tuple variant `{vname}` is not supported by the serde shim"
                        ));
                    }
                    _ => variants.push((vname, None)),
                }
                // Optional discriminant is not supported; skip the comma.
                if let Some(TokenTree::Punct(p)) = body.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
            }
            Shape::Enum(variants)
        }
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    Ok(Input { name, shape })
}

fn serialize_impl(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!("let mut obj = ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(obj)")
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
                    )),
                    Some(fields) => {
                        let pat = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pat} }} => {{\n\
                             let mut inner = ::std::vec::Vec::new();\n{pushes}\
                             ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(inner))])\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn deserialize_impl(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(::serde::get_field(obj, \"{f}\")?)?,\n"
                ));
            }
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut struct_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n")),
                    Some(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::get_field(inner, \"{f}\")?)?,\n"
                            ));
                        }
                        struct_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let inner = val.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for {name}::{v}\"))?;\n\
                             Ok({name}::{v} {{\n{inits}}})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, val) = &entries[0];\n\
                 match tag.as_str() {{\n{struct_arms}\
                 other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}}\n\
                 _ => Err(::serde::DeError::custom(\"expected string or single-key object for {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

fn expand(input: TokenStream, which: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => which(&parsed)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, serialize_impl)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, deserialize_impl)
}
