//! Offline stand-in for `proptest`.
//!
//! Runs each property as a fixed number of deterministic random cases
//! (seeded from the test name, so failures reproduce exactly across
//! runs — there is no shrinking and no persistence file). Covers the
//! strategy subset the workspace uses: numeric ranges, tuples,
//! `collection::vec`, `bool::ANY`, and `option::of`.

pub mod test_runner {
    /// Run configuration. Only `cases` is modelled.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases (the real crate defaults to 256; this host has a
        /// single core, so the shim trades cases for test latency).
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic splitmix64 generator used to drive sampling.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name and case index so every run of the
        /// suite replays the identical case sequence.
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. Unlike the real crate there is no value tree
    /// or shrinking: `sample` draws one value.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every value is valid.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }

    /// `Just(value)`: always yields a clone of the value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing a `Vec` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `None` about a quarter of the time, matching
    /// the real crate's default `of` weighting closely enough.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests. Supports the same surface
/// syntax as the real crate for `fn name(arg in strategy, ...) { .. }`
/// items with an optional leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        u64::from(case),
                    );
                    $(let $arg = ($strat).sample(&mut rng);)+
                    let desc = format!(
                        concat!($(stringify!($arg), " = {:?} ",)+),
                        $(&$arg),+
                    );
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "property {} failed at case {case}/{}: {e}\n  inputs: {desc}",
                            stringify!($name),
                            cfg.cases,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` analogue for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` != `{:?}` ({} vs {})",
            a,
            b,
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("`{:?}` != `{:?}`: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

/// `assert_ne!` analogue for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: both sides equal `{:?}`", a);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u32..17,
            y in -2.0f64..2.0,
            v in prop::collection::vec((0u8..4, prop::bool::ANY), 0..8),
            o in prop::option::of(10usize..20),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(v.len() < 8);
            for (n, _) in &v {
                prop_assert!(*n < 4);
            }
            if let Some(o) = o {
                prop_assert!((10..20).contains(&o));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::deterministic("t", 7);
        let mut b = crate::test_runner::TestRng::deterministic("t", 7);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }
}
