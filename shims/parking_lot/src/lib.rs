//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning
//! API (`lock()` returning a guard directly). A poisoned std lock —
//! only possible if a holder panicked — is recovered into its inner
//! guard, matching parking_lot's behaviour of not propagating poison.

use std::sync;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
