//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and no registry cache, so
//! the real `serde` cannot be fetched. This shim keeps the workspace
//! source-compatible for the subset the repo uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums (unit and struct variants,
//! no `#[serde(...)]` attributes), round-tripped through a JSON-like
//! [`Value`] tree by the sibling `serde_json` shim.
//!
//! Unlike real serde there is no zero-copy/visitor machinery: `Serialize`
//! produces a [`Value`], `Deserialize` consumes one.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Object keys keep insertion order so emitted
/// JSON is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required field in an object's entries (derive helper).
pub fn get_field<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{key}`")))
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_num()
                    .map(|n| n as $t)
                    .ok_or_else(|| DeError::custom(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string; acceptable for the rare config-name
    /// fields (`ChannelProfile::name`) this shim exists to support.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom("expected string"))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let xs = v
            .as_array()
            .ok_or_else(|| DeError::custom("expected 2-tuple array"))?;
        if xs.len() != 2 {
            return Err(DeError::custom("expected 2 elements"));
        }
        Ok((A::from_value(&xs[0])?, B::from_value(&xs[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let xs = v
            .as_array()
            .ok_or_else(|| DeError::custom("expected 3-tuple array"))?;
        if xs.len() != 3 {
            return Err(DeError::custom("expected 3 elements"));
        }
        Ok((
            A::from_value(&xs[0])?,
            B::from_value(&xs[1])?,
            C::from_value(&xs[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn collections_round_trip() {
        let xs = vec![1.0f32, -2.5, 3.25];
        assert_eq!(Vec::<f32>::from_value(&xs.to_value()).unwrap(), xs);
        let t = (1usize, 2usize, 3usize);
        assert_eq!(
            <(usize, usize, usize)>::from_value(&t.to_value()).unwrap(),
            t
        );
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
    }

    #[test]
    fn missing_field_reports_name() {
        let entries = vec![("a".to_string(), Value::Num(1.0))];
        let err = get_field(&entries, "b").unwrap_err();
        assert!(err.to_string().contains("`b`"));
    }
}
