//! Offline stand-in for `criterion`.
//!
//! Provides the same bench-definition API the workspace uses
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`) but measures
//! with plain wall-clock timing loops: a short warm-up, then a timed
//! run, reporting the mean per-iteration time to stdout. There is no
//! statistical analysis, HTML report, or saved baseline.

use std::time::{Duration, Instant};

/// Measurement target: warm up briefly, then time enough iterations to
/// fill the measurement window.
const WARM_UP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(600);

/// Identifies one parameterised benchmark, e.g. `onebit_encode/1024`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the bench closure; `iter` runs and times the routine.
pub struct Bencher {
    /// Mean seconds per iteration, filled in by `iter`.
    elapsed_per_iter: f64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            elapsed_per_iter: f64::NAN,
        }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARM_UP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target_iters = ((MEASURE.as_secs_f64() / per_iter) as u64).max(10);
        let start = Instant::now();
        for _ in 0..target_iters {
            std::hint::black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed().as_secs_f64() / target_iters as f64;
    }
}

fn report(label: &str, secs_per_iter: f64) {
    let (value, unit) = if secs_per_iter < 1e-6 {
        (secs_per_iter * 1e9, "ns")
    } else if secs_per_iter < 1e-3 {
        (secs_per_iter * 1e6, "µs")
    } else if secs_per_iter < 1.0 {
        (secs_per_iter * 1e3, "ms")
    } else {
        (secs_per_iter, "s")
    };
    println!("{label:<50} {value:>10.3} {unit}/iter");
}

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour `cargo bench -- <filter>` like the real crate.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Self { filter }
    }
}

impl Criterion {
    fn enabled(&self, label: &str) -> bool {
        match &self.filter {
            Some(f) => label.contains(f.as_str()),
            None => true,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.enabled(name) {
            let mut b = Bencher::new();
            f(&mut b);
            report(name, b.elapsed_per_iter);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        if self.criterion.enabled(&label) {
            let mut b = Bencher::new();
            f(&mut b);
            report(&label, b.elapsed_per_iter);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        if self.criterion.enabled(&label) {
            let mut b = Bencher::new();
            f(&mut b, input);
            report(&label, b.elapsed_per_iter);
        }
        self
    }

    pub fn finish(self) {}
}

/// Re-export used by some criterion setups; the workspace benches use
/// `std::hint::black_box` directly, but keep this for compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
