//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored serde shim's [`Value`] tree to JSON text and
//! parses JSON text back. Covers the subset the workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`. Numbers are emitted via
//! Rust's shortest-round-trip float formatting, with integral values
//! printed without a fractional part so `u64`/`usize` fields look like
//! integers.

use std::fmt::Write as _;

use serde::{DeError, Deserialize, Serialize, Value};

/// Error type mirroring `serde_json::Error` for the APIs the repo uses.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() && n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        // JSON has no Inf/NaN; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let nl = |out: &mut String, level: usize| {
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * level {
                out.push(' ');
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, level + 1);
                write_value(out, x, indent, level + 1);
            }
            nl(out, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, level + 1);
            }
            nl(out, level);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                loop {
                    xs.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(xs));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over a full UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s_rest =
                        std::str::from_utf8(rest).map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = s_rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = vec![(1.5f64, 2.0f64), (-3.25, 4.0)];
        let s = to_string(&v).unwrap();
        let back: Vec<(f64, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses() {
        let v = vec![vec![1u64, 2], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape() {
        let v = "a\"b\\c\nd".to_string();
        let s = to_string(&v).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_print_without_fraction() {
        let s = to_string(&7u64).unwrap();
        assert_eq!(s, "7");
    }
}
